package tcp

import (
	"repro/internal/des"
	"repro/internal/netsim"
)

// Endpoint multiplexes TCP flows on one host node: it owns the node's
// packet handler, dispatches inbound ACKs to local senders, and (when
// receiving) generates cumulative ACKs for inbound data.
type Endpoint struct {
	Node *netsim.Node
	sim  *des.Simulator

	senders map[int]*Sender
	recv    map[int]*rxFlow

	ackSize int
}

// rxFlow is receive-side per-flow state.
type rxFlow struct {
	// cum is the highest in-order segment received.
	cum int64
	// ooo buffers out-of-order segment numbers.
	ooo map[int64]bool
	// Bytes counts in-order payload delivered.
	Bytes int64
}

// NewEndpoint attaches transport dispatch to a host node, taking over
// its packet handler.
func NewEndpoint(node *netsim.Node) *Endpoint {
	e := &Endpoint{
		Node:    node,
		sim:     node.Network().Sim,
		senders: map[int]*Sender{},
		recv:    map[int]*rxFlow{},
		ackSize: 40,
	}
	node.Handler = e.handle
	return e
}

// NewSender creates a flow from this endpoint to dst.
func (e *Endpoint) NewSender(dst netsim.NodeID, flowID int, cfg SenderConfig) *Sender {
	cfg.fillDefaults()
	s := &Sender{
		Cfg:    cfg,
		Node:   e.Node,
		FlowID: flowID,
		dst:    dst,
		sim:    e.sim,
	}
	e.senders[flowID] = s
	return s
}

// handle processes packets addressed to the host.
func (e *Endpoint) handle(p *netsim.Packet, in *netsim.Port) {
	switch p.Type {
	case netsim.Ack:
		if a, ok := p.Payload.(*ack); ok {
			if s, ok := e.senders[a.FlowID]; ok {
				// ACKs from a previous server (pre-migration) belong
				// to the old connection; drop them.
				if p.Src == s.dst {
					s.handleAck(a)
				}
			}
		}
	case netsim.Data:
		e.AcceptData(p)
	case netsim.Handshake:
		e.AcceptHandshake(p)
	}
}

// AcceptHandshake processes a connection setup (or checkpoint-resume)
// packet: the carried checkpoint seeds the receive state so a
// migrated stream continues from where the previous server left off
// (Sec. 4). Roaming server agents delegate here via OnHandshake.
func (e *Endpoint) AcceptHandshake(p *netsim.Packet) {
	cp, ok := p.Payload.(*Checkpoint)
	if !ok {
		return
	}
	f, exists := e.recv[cp.FlowID]
	if !exists {
		f = &rxFlow{ooo: map[int64]bool{}}
		e.recv[cp.FlowID] = f
	}
	if cp.Cum > f.cum {
		f.cum = cp.Cum
	}
}

// AcceptData registers an inbound data segment and emits the
// cumulative ACK. It is exported so roaming server agents (which own
// their node handler for honeypot/blacklist processing) can delegate
// accepted data here via their OnServe callback.
func (e *Endpoint) AcceptData(p *netsim.Packet) {
	f, ok := e.recv[p.FlowID]
	if !ok {
		f = &rxFlow{ooo: map[int64]bool{}}
		e.recv[p.FlowID] = f
	}
	switch {
	case p.Seq == f.cum+1:
		f.cum++
		f.Bytes += int64(p.Size)
		for f.ooo[f.cum+1] {
			delete(f.ooo, f.cum+1)
			f.cum++
			f.Bytes += int64(p.Size)
		}
	case p.Seq > f.cum+1:
		f.ooo[p.Seq] = true
	}
	// Cumulative ACK back to the claimed source (legitimate senders
	// do not spoof, so this reaches them).
	pp := e.Node.NewPacket()
	*pp = netsim.Packet{
		Src:     e.Node.ID,
		TrueSrc: e.Node.ID,
		Dst:     p.Src,
		Size:    e.ackSize,
		Type:    netsim.Ack,
		FlowID:  p.FlowID,
		Legit:   true,
		Payload: &ack{Cum: f.cum, FlowID: p.FlowID},
	}
	e.Node.Send(pp)
}

// ReceivedBytes returns in-order bytes accepted for a flow.
func (e *Endpoint) ReceivedBytes(flowID int) int64 {
	if f, ok := e.recv[flowID]; ok {
		return f.Bytes
	}
	return 0
}
