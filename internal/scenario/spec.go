// Package scenario is the resilient scenario service: a supervised,
// cancellable run lifecycle behind a declarative suite/case API.
//
// A suite is a named batch of cases; a case is one simulation to run —
// either a tree scenario (a TreeSpec, the same knobs as cmd/hbpsim's
// flags) or a whole figure regeneration (a FigureSpec naming a
// cmd/figures generator). Cases are submitted into a bounded queue and
// executed by a fixed worker pool, each run in its own goroutine under
// a supervisor that enforces wall-clock and simulated-event deadlines,
// isolates panics, retries infrastructure faults with jittered
// exponential backoff, and audits teardown for resource leaks. Every
// state transition is journaled to an append-only log so a restarted
// daemon knows which runs it was holding when it died.
//
// The package is a wall-clock supervisor *around* the deterministic
// simulator, never part of it: a healthy case produces a result
// fingerprint bit-identical to running the same config solo, no matter
// how much chaos its neighbors are under (the chaos soak in
// soak_test.go holds this as an invariant).
package scenario

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/topology"
)

// SuiteSpec is a declarative batch of cases, the unit of submission
// for batch mode (hbpsimd -suite) and the POST /suites payload.
type SuiteSpec struct {
	// Name identifies the suite in journals and artifacts.
	Name string `json:"name"`
	// Cases are executed concurrently under the runner's worker pool.
	Cases []CaseSpec `json:"cases"`
}

// CaseSpec is one simulation to run plus its supervision envelope.
type CaseSpec struct {
	// Name identifies the case within its suite.
	Name string `json:"name"`
	// Kind selects the executor: "tree" (default when Tree is set) or
	// "figure".
	Kind string `json:"kind,omitempty"`
	// Tree configures a single tree-scenario run (Kind "tree").
	Tree *TreeSpec `json:"tree,omitempty"`
	// Figure configures a figure regeneration (Kind "figure").
	Figure *FigureSpec `json:"figure,omitempty"`

	// WallDeadlineSec is the wall-clock deadline per attempt; 0 uses
	// the runner default.
	WallDeadlineSec float64 `json:"wall_deadline_sec,omitempty"`
	// MaxEvents is the simulated-event deadline per attempt; 0 uses
	// the runner default.
	MaxEvents uint64 `json:"max_events,omitempty"`
	// MaxAttempts caps retries of infrastructure faults; 0 uses the
	// runner default. Panics, deadlines and cancellations are never
	// retried.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// InfraCrashProb injects harness mortality: each attempt
	// independently dies with this probability before producing a
	// result (see faults.InfraCrash). The chaos soak uses it to
	// exercise the retry path deterministically.
	InfraCrashProb float64 `json:"infra_crash_prob,omitempty"`
	// PanicForTest makes the executor panic — the supervisor's
	// panic-isolation path is not reachable from valid specs, so the
	// chaos tests need an explicit trapdoor.
	PanicForTest bool `json:"panic_for_test,omitempty"`
}

// TreeSpec mirrors cmd/hbpsim's flag set as a JSON document. Zero
// values mean "the default", exactly as an omitted flag does.
type TreeSpec struct {
	Defense     string  `json:"defense,omitempty"`   // hbp, pushback, pushback-levelk, stackpi, none
	Leaves      int     `json:"leaves,omitempty"`    // default 200
	Attackers   int     `json:"attackers,omitempty"` // default 25
	RateMbps    float64 `json:"rate_mbps,omitempty"` // default 0.1
	Placement   string  `json:"placement,omitempty"` // even, close, far
	Progressive bool    `json:"progressive,omitempty"`
	OnOff       string  `json:"onoff,omitempty"` // "ton,toff" seconds
	RED         bool    `json:"red,omitempty"`
	DeployFrac  float64 `json:"deploy,omitempty"`   // default 1
	DurationSec float64 `json:"duration,omitempty"` // default 100
	EpochSec    float64 `json:"epoch,omitempty"`    // default 10
	Seed        int64   `json:"seed,omitempty"`     // default 1
	Reliable    bool    `json:"reliable,omitempty"`
	LossProb    float64 `json:"loss,omitempty"`
	CrashRate   float64 `json:"crash_rate,omitempty"` // crashes per 100 s
	Auth        bool    `json:"auth,omitempty"`
	Watchdog    bool    `json:"watchdog,omitempty"`
	Byzantine   int     `json:"byzantine,omitempty"`
	ByzRate     float64 `json:"byz_rate,omitempty"`
	// Shards selects the event engine width (experiments.TreeConfig's
	// Shards knob): 0 or 1 sequential, N > 1 hosted on a sharded
	// engine. Results are bit-identical at every value.
	Shards int `json:"shards,omitempty"`
}

// FigureSpec names one cmd/figures generator and a scale.
type FigureSpec struct {
	// Fig is a key of experiments.Figures(): "5".."12" or an
	// extension id.
	Fig string `json:"fig"`
	// Scale is quick, default or full (default "default").
	Scale string `json:"scale,omitempty"`
}

// Validate reports spec errors a submission must reject up front.
func (s *SuiteSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: suite has no name")
	}
	if len(s.Cases) == 0 {
		return fmt.Errorf("scenario: suite %q has no cases", s.Name)
	}
	seen := map[string]bool{}
	for i := range s.Cases {
		c := &s.Cases[i]
		if err := c.Validate(); err != nil {
			return fmt.Errorf("scenario: suite %q case %d: %w", s.Name, i, err)
		}
		if seen[c.Name] {
			return fmt.Errorf("scenario: suite %q: duplicate case name %q", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Validate reports case-spec errors.
func (c *CaseSpec) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("case has no name")
	}
	switch c.EffectiveKind() {
	case "tree":
		if c.Figure != nil {
			return fmt.Errorf("case %q: kind tree with a figure spec", c.Name)
		}
		spec := TreeSpec{}
		if c.Tree != nil {
			spec = *c.Tree
		}
		if _, err := spec.Config(); err != nil {
			return fmt.Errorf("case %q: %w", c.Name, err)
		}
	case "figure":
		if c.Figure == nil {
			return fmt.Errorf("case %q: kind figure without a figure spec", c.Name)
		}
		if _, ok := experiments.Figures()[c.Figure.Fig]; !ok {
			return fmt.Errorf("case %q: unknown figure %q", c.Name, c.Figure.Fig)
		}
		if _, err := figureScale(c.Figure.Scale); err != nil {
			return fmt.Errorf("case %q: %w", c.Name, err)
		}
	default:
		return fmt.Errorf("case %q: unknown kind %q", c.Name, c.Kind)
	}
	if c.InfraCrashProb < 0 || c.InfraCrashProb >= 1 {
		return fmt.Errorf("case %q: infra crash probability %v out of [0,1)", c.Name, c.InfraCrashProb)
	}
	if c.MaxAttempts < 0 {
		return fmt.Errorf("case %q: negative max attempts", c.Name)
	}
	return nil
}

// EffectiveKind resolves the executor kind, defaulting by which spec
// is present ("tree" when neither is).
func (c *CaseSpec) EffectiveKind() string {
	if c.Kind != "" {
		return c.Kind
	}
	if c.Figure != nil {
		return "figure"
	}
	return "tree"
}

// WallDeadline returns the per-attempt wall deadline, falling back to
// def.
func (c *CaseSpec) WallDeadline(def time.Duration) time.Duration {
	if c.WallDeadlineSec > 0 {
		return time.Duration(c.WallDeadlineSec * float64(time.Second))
	}
	return def
}

// Config translates the spec into a validated experiments.TreeConfig,
// the exact mapping cmd/hbpsim applies to its flags.
func (t TreeSpec) Config() (experiments.TreeConfig, error) {
	cfg := experiments.DefaultTreeConfig()
	if t.Leaves > 0 {
		cfg.Topology.Leaves = t.Leaves
	}
	if t.Attackers > 0 {
		cfg.NumAttackers = t.Attackers
	}
	if t.RateMbps > 0 {
		cfg.AttackRate = t.RateMbps * 1e6
	}
	if t.DurationSec > 0 {
		cfg.Duration = t.DurationSec
		if t.DurationSec < cfg.AttackEnd {
			cfg.AttackEnd = t.DurationSec * 0.95
		}
	}
	if t.EpochSec > 0 {
		cfg.Pool.EpochLen = t.EpochSec
	}
	cfg.Progressive = t.Progressive
	cfg.REDQueues = t.RED
	if t.DeployFrac > 0 {
		cfg.DeployFraction = t.DeployFrac
	}
	if t.Seed != 0 {
		cfg.Seed = t.Seed
	}
	cfg.Reliable = t.Reliable
	if t.LossProb > 0 {
		cfg.Faults = experiments.ControlLossPlan(cfg.Seed, t.LossProb)
	}
	if t.CrashRate > 0 {
		cfg.FaultCrashes = int(t.CrashRate * cfg.Duration / 100)
		if cfg.FaultCrashes == 0 {
			cfg.FaultCrashes = 1
		}
	}
	cfg.EpochAuth = t.Auth
	cfg.Watchdog = t.Watchdog
	cfg.ByzantineNodes = t.Byzantine
	if t.ByzRate > 0 {
		cfg.ByzantineRate = t.ByzRate
	}
	if t.Shards < 0 {
		return cfg, fmt.Errorf("negative shard count %d", t.Shards)
	}
	cfg.Shards = t.Shards

	switch t.Defense {
	case "", "hbp":
		cfg.Defense = experiments.HBP
	case "pushback":
		cfg.Defense = experiments.Pushback
	case "pushback-levelk":
		cfg.Defense = experiments.PushbackLevelK
	case "stackpi":
		cfg.Defense = experiments.StackPiFilter
	case "none":
		cfg.Defense = experiments.NoDefense
	default:
		return cfg, fmt.Errorf("unknown defense %q", t.Defense)
	}
	switch t.Placement {
	case "", "even":
		cfg.Placement = topology.Even
	case "close":
		cfg.Placement = topology.Close
	case "far":
		cfg.Placement = topology.Far
	default:
		return cfg, fmt.Errorf("unknown placement %q", t.Placement)
	}
	if t.OnOff != "" {
		var ton, toff float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(t.OnOff, ",", " "), "%f %f", &ton, &toff); err != nil {
			return cfg, fmt.Errorf("bad onoff %q: %v", t.OnOff, err)
		}
		cfg.OnOff = &experiments.OnOffSpec{Ton: ton, Toff: toff}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func figureScale(name string) (experiments.Scale, error) {
	switch name {
	case "quick":
		return experiments.QuickScale(), nil
	case "", "default":
		return experiments.DefaultScale(), nil
	case "full":
		return experiments.FullScale(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q", name)
	}
}
