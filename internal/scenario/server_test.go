package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Runner) {
	t.Helper()
	r := NewRunner(cfg, nil)
	r.Start()
	srv := httptest.NewServer(NewServer(r))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		r.Drain(ctx) //nolint:errcheck
	})
	return srv, r
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestServerSuiteLifecycle drives the happy path over HTTP: create a
// suite with inline cases, poll to completion, read results back.
func TestServerSuiteLifecycle(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 2})
	spec := SuiteSpec{
		Name: "http-suite",
		Cases: []CaseSpec{
			{Name: "a", Tree: quickTree(1)},
			{Name: "b", Tree: quickTree(2)},
		},
	}
	resp, body := postJSON(t, srv.URL+"/suites", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /suites = %d: %s", resp.StatusCode, body)
	}
	var created SuiteStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("decode create response: %v", err)
	}
	if len(created.Runs) != 2 {
		t.Fatalf("created %d runs, want 2", len(created.Runs))
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		var got SuiteStatus
		getJSON(t, srv.URL+"/suites/"+created.Suite.ID, &got)
		done := 0
		for _, run := range got.Runs {
			if run.State.Terminal() {
				if run.State != StatePassed {
					t.Fatalf("run %s: state %s (err %+v)", run.ID, run.State, run.Error)
				}
				if run.Result == nil || run.Result.Fingerprint == "" {
					t.Fatalf("run %s passed without a fingerprint", run.ID)
				}
				done++
			}
		}
		if done == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("suite never finished: %+v", got.Runs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerBackpressure: a full queue answers 503 with Retry-After.
func TestServerBackpressure(t *testing.T) {
	srv, r := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	resp, body := postJSON(t, srv.URL+"/suites", SuiteSpec{Name: "bp"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create suite = %d: %s", resp.StatusCode, body)
	}
	var created SuiteStatus
	json.Unmarshal(body, &created) //nolint:errcheck
	suiteURL := fmt.Sprintf("%s/suites/%s/cases", srv.URL, created.Suite.ID)

	// Block the single worker, then fill the queue.
	resp, body = postJSON(t, suiteURL, CaseSpec{Name: "blocker", Tree: longTree(1)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker = %d: %s", resp.StatusCode, body)
	}
	var blocker Run
	json.Unmarshal(body, &blocker) //nolint:errcheck
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := r.GetRun(blocker.ID)
		if got.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, body = postJSON(t, suiteURL, CaseSpec{Name: "fill", Tree: quickTree(2)}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fill = %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, suiteURL, CaseSpec{Name: "reject", Tree: quickTree(3)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow = %d: %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Cancel the blocker over HTTP; the backlog then drains.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/runs/"+blocker.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", dresp.StatusCode)
	}
	if got := waitTerminal(t, r, blocker.ID, 30*time.Second); got.State != StateCancelled {
		t.Fatalf("blocker state = %s after DELETE", got.State)
	}
}

// TestServerValidation: malformed specs are rejected up front with
// 400, not accepted and failed later.
func TestServerValidation(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	cases := []SuiteSpec{
		{Name: ""},
		{Name: "bad", Cases: []CaseSpec{{Name: "x", Tree: &TreeSpec{Defense: "nonsense"}}}},
		{Name: "bad2", Cases: []CaseSpec{{Name: "x", Kind: "figure"}}},
		{Name: "bad3", Cases: []CaseSpec{{Name: "x", Figure: &FigureSpec{Fig: "99"}}}},
		{Name: "dup", Cases: []CaseSpec{{Name: "x", Tree: quickTree(1)}, {Name: "x", Tree: quickTree(2)}}},
	}
	for i, spec := range cases {
		if resp, body := postJSON(t, srv.URL+"/suites", spec); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d (%s), want 400", i, resp.StatusCode, body)
		}
	}
	if resp, body := postJSON(t, srv.URL+"/suites", SuiteSpec{Name: "ok"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("empty suite rejected: %d %s", resp.StatusCode, body)
	}
}

// TestServerHealthz reports queue depth.
func TestServerHealthz(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueCap: 7})
	var h map[string]any
	resp := getJSON(t, srv.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, h)
	}
	if int(h["queue_cap"].(float64)) != 7 {
		t.Fatalf("queue_cap = %v, want 7", h["queue_cap"])
	}
}

// TestServerReadyz: readyz distinguishes live from schedulable — 200
// with headroom, 503 once the queue is full or the daemon drains,
// while healthz stays 200 throughout.
func TestServerReadyz(t *testing.T) {
	r := NewRunner(Config{Workers: 1, QueueCap: 1}, nil)
	// Pool not started: admitted work stays queued, so fullness is
	// deterministic.
	srv := httptest.NewServer(NewServer(r))
	defer srv.Close()

	var h Health
	if resp := getJSON(t, srv.URL+"/readyz", &h); resp.StatusCode != http.StatusOK || !h.Ready() {
		t.Fatalf("idle readyz = %d %+v, want 200/ready", resp.StatusCode, h)
	}

	resp, body := postJSON(t, srv.URL+"/suites", SuiteSpec{
		Name:  "fill",
		Cases: []CaseSpec{{Name: "sit", Tree: quickTree(1)}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("fill suite = %d: %s", resp.StatusCode, body)
	}
	resp = getJSON(t, srv.URL+"/readyz", &h)
	if resp.StatusCode != http.StatusServiceUnavailable || h.Ready() || h.QueueDepth != 1 {
		t.Fatalf("full readyz = %d %+v, want 503 with queue 1", resp.StatusCode, h)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("unready readyz without Retry-After")
	}
	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d while unready, want 200 (still live)", resp.StatusCode)
	}

	// Draining flips readyz to 503 regardless of queue depth.
	r.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp = getJSON(t, srv.URL+"/readyz", &h)
	if resp.StatusCode != http.StatusServiceUnavailable || !h.Draining {
		t.Fatalf("draining readyz = %d %+v, want 503 with draining=true", resp.StatusCode, h)
	}
}

// TestServerNotFound: unknown suite and run IDs are 404.
func TestServerNotFound(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	if resp := getJSON(t, srv.URL+"/suites/s-999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown suite = %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/runs/r-999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown run = %d", resp.StatusCode)
	}
}
