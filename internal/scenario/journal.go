package scenario

import (
	"time"

	"repro/internal/jsonl"
)

// EntryType tags one journal record.
type EntryType string

const (
	// EntrySuite records a suite's creation.
	EntrySuite EntryType = "suite"
	// EntrySubmitted records a run's admission to the queue.
	EntrySubmitted EntryType = "submitted"
	// EntryStarted records a worker picking the run up (one per
	// attempt).
	EntryStarted EntryType = "started"
	// EntryFinished records the terminal state.
	EntryFinished EntryType = "finished"
)

// Entry is one append-only journal record. The journal is the crash
// ledger, not the result store: it carries enough to reconstruct every
// run's lifecycle position after a daemon restart (a run with a
// started entry but no finished entry was lost mid-flight), plus the
// result fingerprint so recovered history stays comparable.
type Entry struct {
	Type  EntryType `json:"type"`
	Time  time.Time `json:"time"`
	Suite string    `json:"suite,omitempty"`
	// SuiteName is set on EntrySuite.
	SuiteName string `json:"suite_name,omitempty"`
	Run       string `json:"run,omitempty"`
	// Spec is set on EntrySubmitted so a recovered run is
	// resubmittable.
	Spec *CaseSpec `json:"spec,omitempty"`
	// Attempt is set on EntryStarted.
	Attempt int `json:"attempt,omitempty"`
	// State, Error and Fingerprint are set on EntryFinished.
	State       State     `json:"state,omitempty"`
	Error       *RunError `json:"error,omitempty"`
	Fingerprint string    `json:"fingerprint,omitempty"`
}

// Journal is the run lifecycle's append-only JSONL ledger, a typed
// face over internal/jsonl: every write is flushed and synced before
// Record returns, and after a crash the journal may miss at most the
// transition in flight, never hold a torn prefix of one.
type Journal struct {
	log *jsonl.Log[Entry]
}

// OpenJournal opens (creating if needed) the journal at path, first
// reading back every intact record for recovery. A damaged or torn
// tail — the write the previous process died inside — is dropped, not
// an error.
func OpenJournal(path string) (*Journal, []Entry, error) {
	log, entries, err := jsonl.Open[Entry](path)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{log: log}, entries, nil
}

// Record appends one entry durably.
func (j *Journal) Record(e Entry) error {
	if j == nil {
		return nil
	}
	return j.log.Record(e)
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	return j.log.Close()
}

// Recover reconstructs run records from journal entries: terminal runs
// come back as journaled, and any run submitted or started but never
// finished is marked StateInterrupted — the previous daemon died while
// holding it. The returned runs carry enough spec to resubmit.
func Recover(entries []Entry) (suites map[string]string, runs []*Run) {
	suites = map[string]string{}
	byID := map[string]*Run{}
	finished := map[string]bool{}
	for _, e := range entries {
		switch e.Type {
		case EntrySuite:
			suites[e.Suite] = e.SuiteName
		case EntrySubmitted:
			r := &Run{ID: e.Run, Suite: e.Suite, State: StateInterrupted, SubmittedAt: e.Time}
			if e.Spec != nil {
				r.Spec = *e.Spec
			}
			byID[e.Run] = r
			runs = append(runs, r)
		case EntryStarted:
			if r := byID[e.Run]; r != nil {
				r.Attempts = e.Attempt
				r.StartedAt = e.Time
			}
		case EntryFinished:
			if r := byID[e.Run]; r != nil && !finished[e.Run] {
				// First completion wins: a duplicate finished record
				// (a crash between journaling and acking can replay
				// one) must not rewrite an already-terminal run.
				finished[e.Run] = true
				r.State = e.State
				r.Error = e.Error
				r.FinishedAt = e.Time
				if e.Fingerprint != "" {
					r.Result = &CaseResult{Kind: r.Spec.EffectiveKind(), Fingerprint: e.Fingerprint}
				}
			}
		}
	}
	return suites, runs
}
