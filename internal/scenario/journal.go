package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// EntryType tags one journal record.
type EntryType string

const (
	// EntrySuite records a suite's creation.
	EntrySuite EntryType = "suite"
	// EntrySubmitted records a run's admission to the queue.
	EntrySubmitted EntryType = "submitted"
	// EntryStarted records a worker picking the run up (one per
	// attempt).
	EntryStarted EntryType = "started"
	// EntryFinished records the terminal state.
	EntryFinished EntryType = "finished"
)

// Entry is one append-only journal record. The journal is the crash
// ledger, not the result store: it carries enough to reconstruct every
// run's lifecycle position after a daemon restart (a run with a
// started entry but no finished entry was lost mid-flight), plus the
// result fingerprint so recovered history stays comparable.
type Entry struct {
	Type  EntryType `json:"type"`
	Time  time.Time `json:"time"`
	Suite string    `json:"suite,omitempty"`
	// SuiteName is set on EntrySuite.
	SuiteName string `json:"suite_name,omitempty"`
	Run       string `json:"run,omitempty"`
	// Spec is set on EntrySubmitted so a recovered run is
	// resubmittable.
	Spec *CaseSpec `json:"spec,omitempty"`
	// Attempt is set on EntryStarted.
	Attempt int `json:"attempt,omitempty"`
	// State, Error and Fingerprint are set on EntryFinished.
	State       State     `json:"state,omitempty"`
	Error       *RunError `json:"error,omitempty"`
	Fingerprint string    `json:"fingerprint,omitempty"`
}

// Journal is an append-only JSONL ledger. Every write is flushed and
// synced before Record returns: after a crash the journal may miss at
// most the transition in flight, never hold a torn prefix of one.
type Journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// OpenJournal opens (creating if needed) the journal at path, first
// reading back every intact record for recovery. A trailing partial
// line — the write the previous process died inside — is dropped, not
// an error.
func OpenJournal(path string) (*Journal, []Entry, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: open journal: %w", err)
	}
	var entries []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	valid := int64(0)
	for sc.Scan() {
		line := sc.Bytes()
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			// Torn tail from a crash mid-write; recovery stops here
			// and the next Record overwrites it.
			break
		}
		entries = append(entries, e)
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("scenario: read journal: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("scenario: truncate torn journal tail: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("scenario: seek journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f)}, entries, nil
}

// Record appends one entry durably.
func (j *Journal) Record(e Entry) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("scenario: marshal journal entry: %w", err)
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("scenario: write journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("scenario: flush journal: %w", err)
	}
	return j.f.Sync()
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Recover reconstructs run records from journal entries: terminal runs
// come back as journaled, and any run submitted or started but never
// finished is marked StateInterrupted — the previous daemon died while
// holding it. The returned runs carry enough spec to resubmit.
func Recover(entries []Entry) (suites map[string]string, runs []*Run) {
	suites = map[string]string{}
	byID := map[string]*Run{}
	for _, e := range entries {
		switch e.Type {
		case EntrySuite:
			suites[e.Suite] = e.SuiteName
		case EntrySubmitted:
			r := &Run{ID: e.Run, Suite: e.Suite, State: StateInterrupted, SubmittedAt: e.Time}
			if e.Spec != nil {
				r.Spec = *e.Spec
			}
			byID[e.Run] = r
			runs = append(runs, r)
		case EntryStarted:
			if r := byID[e.Run]; r != nil {
				r.Attempts = e.Attempt
				r.StartedAt = e.Time
			}
		case EntryFinished:
			if r := byID[e.Run]; r != nil {
				r.State = e.State
				r.Error = e.Error
				r.FinishedAt = e.Time
				if e.Fingerprint != "" {
					r.Result = &CaseResult{Kind: r.Spec.EffectiveKind(), Fingerprint: e.Fingerprint}
				}
			}
		}
	}
	return suites, runs
}
