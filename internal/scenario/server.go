package scenario

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Server is the HTTP face of the runner — the suite/case API
// cmd/hbpsimd serves and cmd/hbpsim submits to.
//
//	POST   /suites            {"name": ...}            -> suite (optionally with inline "cases")
//	GET    /suites            list suites
//	GET    /suites/{id}       suite + run snapshots
//	POST   /suites/{id}/cases CaseSpec                 -> run (503 + Retry-After when full)
//	GET    /runs/{id}         run snapshot
//	DELETE /runs/{id}         cancel the run
//	POST   /runs/{id}/resubmit re-queue an interrupted run
//	GET    /healthz           liveness + queue depth
//	GET    /readyz            schedulability: 200 only when accepting work
type Server struct {
	runner *Runner
	mux    *http.ServeMux
}

// NewServer wires the routes.
func NewServer(r *Runner) *Server {
	s := &Server{runner: r, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /suites", s.createSuite)
	s.mux.HandleFunc("GET /suites", s.listSuites)
	s.mux.HandleFunc("GET /suites/{id}", s.getSuite)
	s.mux.HandleFunc("POST /suites/{id}/cases", s.submitCase)
	s.mux.HandleFunc("GET /runs/{id}", s.getRun)
	s.mux.HandleFunc("DELETE /runs/{id}", s.cancelRun)
	s.mux.HandleFunc("POST /runs/{id}/resubmit", s.resubmitRun)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /readyz", s.readyz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.mux.ServeHTTP(w, req)
}

// SuiteStatus is the GET /suites/{id} (and POST /suites) body: the
// suite plus snapshots of its runs.
type SuiteStatus struct {
	Suite Suite `json:"suite"`
	Runs  []Run `json:"runs"`
}

func (s *Server) createSuite(w http.ResponseWriter, req *http.Request) {
	var spec SuiteSpec
	if err := json.NewDecoder(req.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// A bare {"name": ...} creates an empty suite for incremental
	// submission; inline cases are validated and submitted atomically
	// up front.
	if len(spec.Cases) > 0 {
		if err := spec.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	} else if spec.Name == "" {
		httpError(w, http.StatusBadRequest, errors.New("suite has no name"))
		return
	}
	suite, err := s.runner.CreateSuite(spec.Name)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	for i := range spec.Cases {
		if _, err := s.runner.Submit(suite.ID, spec.Cases[i]); err != nil {
			// Partial admission is visible in the suite state; report
			// the stall so the client can resubmit the remainder.
			w.Header().Set("Retry-After", "1")
			httpError(w, statusFor(err), err)
			return
		}
	}
	got, runs, _ := s.runner.GetSuite(suite.ID)
	writeJSON(w, http.StatusCreated, SuiteStatus{Suite: got, Runs: runs})
}

func (s *Server) listSuites(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, s.runner.Suites())
}

func (s *Server) getSuite(w http.ResponseWriter, req *http.Request) {
	suite, runs, ok := s.runner.GetSuite(req.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("no such suite"))
		return
	}
	writeJSON(w, http.StatusOK, SuiteStatus{Suite: suite, Runs: runs})
}

func (s *Server) submitCase(w http.ResponseWriter, req *http.Request) {
	var spec CaseSpec
	if err := json.NewDecoder(req.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	run, err := s.runner.Submit(req.PathValue("id"), spec)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.runner.snapshot(run))
}

func (s *Server) getRun(w http.ResponseWriter, req *http.Request) {
	run, ok := s.runner.GetRun(req.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("no such run"))
		return
	}
	writeJSON(w, http.StatusOK, run)
}

func (s *Server) cancelRun(w http.ResponseWriter, req *http.Request) {
	if err := s.runner.Cancel(req.PathValue("id")); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	run, _ := s.runner.GetRun(req.PathValue("id"))
	writeJSON(w, http.StatusOK, run)
}

func (s *Server) resubmitRun(w http.ResponseWriter, req *http.Request) {
	run, err := s.runner.Resubmit(req.PathValue("id"))
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.runner.snapshot(run))
}

func (s *Server) healthz(w http.ResponseWriter, req *http.Request) {
	depth, capacity := s.runner.QueueDepth()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"queue":     depth,
		"queue_cap": capacity,
	})
}

// readyz distinguishes live from schedulable: a draining daemon or a
// full queue answers 503 (with the same body) so a fleet coordinator
// or smoke test can tell "up" from "will accept a run right now".
func (s *Server) readyz(w http.ResponseWriter, req *http.Request) {
	h := s.runner.Health()
	code := http.StatusOK
	if !h.Ready() {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, h)
}

// statusFor maps runner errors to HTTP statuses: backpressure and
// shutdown are 503 (retryable), bad specs are 400.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
