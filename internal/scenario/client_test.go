package scenario

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRidesOutSaturation: a saturated daemon — full queue, no
// worker draining it yet — answers 503 + Retry-After; the client must
// back off and land the submission once capacity frees up, instead of
// failing on the first rejection.
func TestClientRidesOutSaturation(t *testing.T) {
	r := NewRunner(Config{Workers: 1, QueueCap: 1}, nil)
	// The pool is intentionally NOT started: the queue stays full
	// until the test opens the drain.
	var rejected atomic.Int64
	inner := NewServer(r)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rw := &statusRecorder{ResponseWriter: w}
		inner.ServeHTTP(rw, req)
		if rw.status == http.StatusServiceUnavailable {
			rejected.Add(1)
		}
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.BackoffBase = 20 * time.Millisecond
	c.BackoffMax = 100 * time.Millisecond // cap beats the server's 1 s Retry-After
	c.Seed = 42
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	created, err := c.CreateSuite(ctx, SuiteSpec{Name: "saturation"})
	if err != nil {
		t.Fatalf("CreateSuite: %v", err)
	}
	if _, err := c.SubmitCase(ctx, created.Suite.ID, CaseSpec{Name: "filler", Tree: quickTree(7)}); err != nil {
		t.Fatalf("filler submit: %v", err)
	}

	// Open the drain once the client has eaten at least one 503.
	go func() {
		for rejected.Load() == 0 {
			time.Sleep(5 * time.Millisecond)
		}
		r.Start()
	}()

	run, err := c.SubmitCase(ctx, created.Suite.ID, CaseSpec{Name: "patient", Tree: quickTree(8)})
	if err != nil {
		t.Fatalf("saturated submit did not recover: %v (after %d rejections)", err, rejected.Load())
	}
	if rejected.Load() == 0 {
		t.Fatal("server never rejected; the test exercised nothing")
	}
	got, err := c.WaitRun(ctx, run.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitRun: %v", err)
	}
	if got.State != StatePassed {
		t.Fatalf("patient run state %s (err %+v), want passed", got.State, got.Error)
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestClientHonorsRetryAfter: a Retry-After above the computed backoff
// but below the cap raises the wait to what the server asked for.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"backpressure"}`)) //nolint:errcheck
			return
		}
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"suite":{"id":"s-1","name":"x"},"runs":[]}`)) //nolint:errcheck
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.BackoffBase = time.Millisecond
	c.BackoffMax = 5 * time.Second
	c.Seed = 1
	start := time.Now()
	if _, err := c.CreateSuite(context.Background(), SuiteSpec{Name: "x"}); err != nil {
		t.Fatalf("CreateSuite: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("client waited only %v; Retry-After of 1s was not honored", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

// TestClientGivesUpEventually: endless 503s exhaust MaxSubmitRetries
// rather than looping forever.
func TestClientGivesUpEventually(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"always full"}`)) //nolint:errcheck
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.BackoffBase = time.Millisecond
	c.BackoffMax = 2 * time.Millisecond
	c.MaxSubmitRetries = 3
	c.Seed = 1
	_, err := c.CreateSuite(context.Background(), SuiteSpec{Name: "x"})
	if err == nil {
		t.Fatal("submission against a permanently saturated server succeeded")
	}
	if calls.Load() != 4 { // initial try + 3 retries
		t.Fatalf("server saw %d calls, want 4", calls.Load())
	}
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
