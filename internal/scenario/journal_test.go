package scenario

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestJournalRoundTrip: a daemon generation writes its lifecycle, and
// the next generation recovers terminal runs verbatim.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh journal has %d entries", len(entries))
	}
	r := NewRunner(Config{Workers: 1, Journal: j}, nil)
	r.Start()
	s, err := r.CreateSuite("persisted")
	if err != nil {
		t.Fatalf("CreateSuite: %v", err)
	}
	run, err := r.Submit(s.ID, CaseSpec{Name: "keep", Tree: quickTree(3)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitTerminal(t, r, run.ID, 60*time.Second)
	if got.State != StatePassed {
		t.Fatalf("state = %s (err %+v)", got.State, got.Error)
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Second generation.
	j2, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	r2 := NewRunner(Config{Workers: 1, Journal: j2}, entries)
	rec, ok := r2.GetRun(run.ID)
	if !ok {
		t.Fatalf("run %s not recovered", run.ID)
	}
	if rec.State != StatePassed {
		t.Fatalf("recovered state = %s, want passed", rec.State)
	}
	if rec.Result == nil || rec.Result.Fingerprint != got.Result.Fingerprint {
		t.Fatalf("recovered fingerprint %+v != original %s", rec.Result, got.Result.Fingerprint)
	}
	// New IDs must not collide with recovered ones.
	r2.Start()
	defer r2.Drain(context.Background()) //nolint:errcheck
	s2, err := r2.CreateSuite("second")
	if err != nil {
		t.Fatalf("CreateSuite gen2: %v", err)
	}
	if s2.ID == s.ID {
		t.Fatalf("suite ID %s reused after recovery", s2.ID)
	}
	run2, err := r2.Submit(s2.ID, CaseSpec{Name: "fresh", Tree: quickTree(4)})
	if err != nil {
		t.Fatalf("Submit gen2: %v", err)
	}
	if run2.ID == run.ID {
		t.Fatalf("run ID %s reused after recovery", run2.ID)
	}
}

// TestJournalMarksInterrupted: a run journaled as started but never
// finished — the daemon died holding it — recovers as interrupted and
// can be resubmitted.
func TestJournalMarksInterrupted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	now := time.Now()
	spec := CaseSpec{Name: "orphan", Tree: quickTree(5)}
	for _, e := range []Entry{
		{Type: EntrySuite, Time: now, Suite: "s-1", SuiteName: "crashed"},
		{Type: EntrySubmitted, Time: now, Suite: "s-1", Run: "r-1", Spec: &spec},
		{Type: EntryStarted, Time: now, Suite: "s-1", Run: "r-1", Attempt: 1},
	} {
		if err := j.Record(e); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	j.Close()

	j2, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	r := NewRunner(Config{Workers: 1, Journal: j2}, entries)
	r.Start()
	defer r.Drain(context.Background()) //nolint:errcheck
	rec, ok := r.GetRun("r-1")
	if !ok || rec.State != StateInterrupted {
		t.Fatalf("recovered run = %+v, want interrupted", rec)
	}
	if rec.Attempts != 1 {
		t.Fatalf("recovered attempts = %d, want 1", rec.Attempts)
	}
	// The interrupted run resumes as a fresh supervised run.
	run, err := r.Resubmit("r-1")
	if err != nil {
		t.Fatalf("Resubmit: %v", err)
	}
	if got := waitTerminal(t, r, run.ID, 60*time.Second); got.State != StatePassed {
		t.Fatalf("resubmitted run state = %s (err %+v)", got.State, got.Error)
	}
}

// TestJournalMultiRecordTornTail: damage spanning several trailing
// lines — a damaged record followed by an intact-looking one and a
// torn one — recovers only the records before the first damaged line;
// nothing after a hole is resurrected.
func TestJournalMultiRecordTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	body := `{"type":"suite","suite":"s-1","suite_name":"ok"}` + "\n" +
		`{"type":"submitted","suite":"s-1","run":"r-1","spec":{"name":"a"}}` + "\n" +
		`{"type":"started","suite":"s-1","run":` + "\n" + // damaged
		`{"type":"finished","suite":"s-1","run":"r-1","state":"passed"}` + "\n" + // after the hole
		`{"type":"fin` // torn
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	j, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open multi-torn journal: %v", err)
	}
	defer j.Close()
	if len(entries) != 2 || entries[1].Type != EntrySubmitted {
		t.Fatalf("recovered %+v, want the 2-record pre-damage prefix", entries)
	}
	// The finished record after the hole was dropped, so the run
	// recovers as interrupted, not passed.
	_, runs := Recover(entries)
	if len(runs) != 1 || runs[0].State != StateInterrupted {
		t.Fatalf("recovered runs = %+v, want one interrupted run", runs)
	}
}

// TestJournalDuplicateCompletion: a crash between journaling a finished
// record and acknowledging it can replay the record on the next
// generation. Recovery must keep the first terminal state and ignore
// the duplicate — a run is never double-counted or rewritten.
func TestJournalDuplicateCompletion(t *testing.T) {
	spec := CaseSpec{Name: "dup", Tree: quickTree(5)}
	entries := []Entry{
		{Type: EntrySuite, Suite: "s-1", SuiteName: "dup-suite"},
		{Type: EntrySubmitted, Suite: "s-1", Run: "r-1", Spec: &spec},
		{Type: EntryStarted, Suite: "s-1", Run: "r-1", Attempt: 1},
		{Type: EntryFinished, Suite: "s-1", Run: "r-1", State: StatePassed, Fingerprint: "aaaa"},
		{Type: EntryFinished, Suite: "s-1", Run: "r-1", State: StateFailed,
			Error: &RunError{Kind: ErrRun, Message: "replayed stale record"}},
	}
	_, runs := Recover(entries)
	if len(runs) != 1 {
		t.Fatalf("recovered %d runs, want 1", len(runs))
	}
	r := runs[0]
	if r.State != StatePassed || r.Error != nil {
		t.Fatalf("duplicate completion rewrote the run: state %s err %+v, want passed/nil", r.State, r.Error)
	}
	if r.Result == nil || r.Result.Fingerprint != "aaaa" {
		t.Fatalf("first completion's fingerprint lost: %+v", r.Result)
	}
}

// TestJournalTornTail: a crash mid-write leaves a torn last line; the
// reopen drops it and appends cleanly after the intact prefix.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if err := j.Record(Entry{Type: EntrySuite, Time: time.Now(), Suite: "s-1", SuiteName: "ok"}); err != nil {
		t.Fatalf("Record: %v", err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open for tearing: %v", err)
	}
	f.WriteString(`{"type":"submitted","suite":"s-1","ru`) //nolint:errcheck
	f.Close()

	j2, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen torn journal: %v", err)
	}
	if len(entries) != 1 || entries[0].SuiteName != "ok" {
		t.Fatalf("recovered entries = %+v, want the one intact record", entries)
	}
	// The journal must be appendable after truncating the torn tail.
	if err := j2.Record(Entry{Type: EntrySuite, Time: time.Now(), Suite: "s-2", SuiteName: "after"}); err != nil {
		t.Fatalf("Record after tear: %v", err)
	}
	j2.Close()
	_, entries, err = OpenJournal(path)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("after repair got %d entries, want 2", len(entries))
	}
}
