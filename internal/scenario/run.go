package scenario

import (
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// State is a run's position in the supervised lifecycle.
type State string

const (
	// StateQueued: admitted to the submission queue, not yet picked up
	// by a worker.
	StateQueued State = "queued"
	// StateRunning: executing (possibly on a retry attempt).
	StateRunning State = "running"
	// StatePassed: completed with a clean teardown; Result is set.
	StatePassed State = "passed"
	// StateFailed: exhausted its attempts or died to a non-retryable
	// error; Error is set.
	StateFailed State = "failed"
	// StateCancelled: stopped by an explicit cancel or daemon drain
	// before completing.
	StateCancelled State = "cancelled"
	// StateInterrupted: journal recovery found the run started but
	// never finished — the previous daemon process died while holding
	// it.
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StatePassed, StateFailed, StateCancelled, StateInterrupted:
		return true
	}
	return false
}

// ErrorKind classifies how a run died; the supervisor retries only
// ErrInfra.
type ErrorKind string

const (
	// ErrPanic: the executor panicked; Stack holds the trace.
	ErrPanic ErrorKind = "panic"
	// ErrWallDeadline: the attempt overran its wall-clock deadline.
	ErrWallDeadline ErrorKind = "wall-deadline"
	// ErrEventLimit: the attempt overran its simulated-event deadline.
	ErrEventLimit ErrorKind = "event-limit"
	// ErrInfra: injected infrastructure mortality — the only
	// retryable kind.
	ErrInfra ErrorKind = "infra-fault"
	// ErrCancelled: the run's context was cancelled by the client or
	// the drain.
	ErrCancelled ErrorKind = "cancelled"
	// ErrLeak: the run completed but its teardown audit found
	// stranded resources.
	ErrLeak ErrorKind = "leak"
	// ErrRun: any other executor error (bad config reaching the
	// executor, simulation error).
	ErrRun ErrorKind = "error"
	// ErrWorkerLost: the fleet coordinator exhausted its dispatch
	// budget for the run — every worker that leased it crashed, hung
	// or partitioned away before reporting a result.
	ErrWorkerLost ErrorKind = "worker-lost"
)

// RunError is the recorded cause of a failed or cancelled run.
type RunError struct {
	Kind    ErrorKind `json:"kind"`
	Message string    `json:"message"`
	// Stack is the recovered goroutine stack for Kind == ErrPanic.
	Stack string `json:"stack,omitempty"`
	// Attempt is the 1-based attempt that produced the final error.
	Attempt int `json:"attempt"`
}

func (e *RunError) Error() string { return string(e.Kind) + ": " + e.Message }

// Run is one supervised case execution. Fields are snapshots guarded
// by the runner's lock; handlers copy them out via Snapshot.
type Run struct {
	// ID is unique across the daemon's lifetime (journal recovery
	// included).
	ID string `json:"id"`
	// Suite is the owning suite's ID.
	Suite string `json:"suite"`
	// Spec is the submitted case.
	Spec CaseSpec `json:"spec"`
	// State is the current lifecycle position.
	State State `json:"state"`
	// Attempts counts execution attempts so far.
	Attempts int `json:"attempts"`
	// Error is set for failed/cancelled runs.
	Error *RunError `json:"error,omitempty"`
	// Result is set for passed runs.
	Result *CaseResult `json:"result,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
}

// CaseResult is the deterministic outcome of a passed case plus its
// fingerprint. The fingerprint covers only seed-deterministic fields —
// never timestamps or attempt counts — so a suite run under chaos
// yields byte-identical fingerprints to a quiet one.
type CaseResult struct {
	Kind string `json:"kind"`
	// Tree is set for tree cases.
	Tree *TreeCaseResult `json:"tree,omitempty"`
	// Figure is set for figure cases.
	Figure *FigureCaseResult `json:"figure,omitempty"`
	// Fingerprint is the sha256 of the canonical JSON of Tree or
	// Figure.
	Fingerprint string `json:"fingerprint"`
}

// TreeCaseResult is the deterministic summary of one tree run — the
// numbers cmd/hbpsim prints, minus anything wall-clock.
type TreeCaseResult struct {
	MeanBefore        float64              `json:"mean_before"`
	MeanDuringAttack  float64              `json:"mean_during_attack"`
	AttackersCaptured int                  `json:"attackers_captured"`
	CollateralBlocks  int                  `json:"collateral_blocks"`
	CaptureTimes      []float64            `json:"capture_times,omitempty"`
	CtrlMessages      int64                `json:"ctrl_messages"`
	Ctrl              metrics.ControlStats `json:"ctrl"`
	Sec               metrics.SecurityStats `json:"sec"`
	OpenSessionsAtEnd int                  `json:"open_sessions_at_end"`
	QueueDrops        int64                `json:"queue_drops"`
	EventsFired       uint64               `json:"events_fired"`
	Leak              experiments.LeakReport `json:"leak"`
	// Throughput is the sampled legitimate-goodput series.
	Throughput *metrics.Series `json:"throughput,omitempty"`
}

// FigureCaseResult is a rendered figure table.
type FigureCaseResult struct {
	Fig string `json:"fig"`
	// Title is the table title; Rendered is the aligned-text table —
	// both are deterministic for a fixed scale.
	Title    string `json:"title"`
	Rendered string `json:"rendered"`
}

// Snapshot returns a copy safe to marshal outside the runner's lock.
func (r *Run) Snapshot() Run {
	cp := *r
	return cp
}
