package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to a scenario daemon (hbpsimd) or a fleet coordinator
// (hbpfleet) — both serve the same suite/case API. It is the polite
// counterpart of the server's admission control: a 503 with
// Retry-After is backpressure, not failure, so submissions wait out
// the advertised delay under a capped jittered exponential backoff
// instead of bouncing.
type Client struct {
	// Base is the daemon's base URL, e.g. http://127.0.0.1:8080.
	Base string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// MaxSubmitRetries caps how many 503 rejections one submission
	// rides out before giving up (default 8).
	MaxSubmitRetries int
	// BackoffBase and BackoffMax bound the retry delay (defaults
	// 200 ms and 10 s). A server Retry-After below the computed
	// backoff raises the delay to what the server asked for; the cap
	// always wins.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed feeds the jitter; 0 derives one from the wall clock so
	// concurrent clients do not retry in lockstep.
	Seed int64
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) retries() int {
	if c.MaxSubmitRetries > 0 {
		return c.MaxSubmitRetries
	}
	return 8
}

func (c *Client) backoffBounds() (base, max time.Duration) {
	base, max = c.BackoffBase, c.BackoffMax
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	if max <= 0 {
		max = 10 * time.Second
	}
	return base, max
}

func (c *Client) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return time.Now().UnixNano()
}

// apiError is a non-2xx response decoded to its error body.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("status %d: %s", e.Status, e.Msg)
}

// do issues one request and decodes the JSON response into out (when
// non-nil). Non-2xx statuses come back as *apiError along with any
// Retry-After the server advertised.
func (c *Client) do(ctx context.Context, method, path string, in, out any) (retryAfter time.Duration, err error) {
	var body *bytes.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(b)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck // best-effort body
		return retryAfter, &apiError{Status: resp.StatusCode, Msg: e.Error}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return retryAfter, fmt.Errorf("decode %s %s response: %w", method, path, err)
		}
	}
	return retryAfter, nil
}

// retry503 runs op under the submission retry policy: a 503 waits out
// max(server Retry-After, jittered exponential backoff) capped at
// BackoffMax, up to MaxSubmitRetries times; every other error is
// final.
func (c *Client) retry503(ctx context.Context, op func() (time.Duration, error)) error {
	base, max := c.backoffBounds()
	seed := c.seed()
	for attempt := 1; ; attempt++ {
		retryAfter, err := op()
		if err == nil {
			return nil
		}
		ae, ok := err.(*apiError)
		if !ok || ae.Status != http.StatusServiceUnavailable || attempt > c.retries() {
			return err
		}
		d := Backoff(base, max, seed, attempt)
		if retryAfter > d {
			d = retryAfter
		}
		if d > max {
			d = max
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// CreateSuite posts a suite spec (optionally with inline cases),
// riding out 503 backpressure.
func (c *Client) CreateSuite(ctx context.Context, spec SuiteSpec) (SuiteStatus, error) {
	var out SuiteStatus
	err := c.retry503(ctx, func() (time.Duration, error) {
		return c.do(ctx, http.MethodPost, "/suites", spec, &out)
	})
	return out, err
}

// SubmitCase submits one case to an existing suite, riding out 503
// backpressure.
func (c *Client) SubmitCase(ctx context.Context, suiteID string, spec CaseSpec) (Run, error) {
	var out Run
	err := c.retry503(ctx, func() (time.Duration, error) {
		return c.do(ctx, http.MethodPost, "/suites/"+suiteID+"/cases", spec, &out)
	})
	return out, err
}

// GetRun fetches a run snapshot.
func (c *Client) GetRun(ctx context.Context, id string) (Run, error) {
	var out Run
	_, err := c.do(ctx, http.MethodGet, "/runs/"+id, nil, &out)
	return out, err
}

// GetSuite fetches a suite and its run snapshots.
func (c *Client) GetSuite(ctx context.Context, id string) (SuiteStatus, error) {
	var out SuiteStatus
	_, err := c.do(ctx, http.MethodGet, "/suites/"+id, nil, &out)
	return out, err
}

// CancelRun asks the daemon to cancel a run.
func (c *Client) CancelRun(ctx context.Context, id string) error {
	_, err := c.do(ctx, http.MethodDelete, "/runs/"+id, nil, nil)
	return err
}

// WaitRun polls until the run reaches a terminal state or ctx ends.
func (c *Client) WaitRun(ctx context.Context, id string, poll time.Duration) (Run, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		run, err := c.GetRun(ctx, id)
		if err != nil {
			return run, err
		}
		if run.State.Terminal() {
			return run, nil
		}
		t := time.NewTimer(poll)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return run, ctx.Err()
		}
	}
}
