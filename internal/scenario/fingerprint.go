package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// fingerprint hashes the canonical JSON encoding of v. encoding/json
// marshals struct fields in declaration order and map keys sorted, so
// for the result types here the encoding — and therefore the digest —
// is canonical: two runs agree on the fingerprint iff they agree on
// every deterministic field.
func fingerprint(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// The result types are plain data; a marshal failure is a
		// programming error, not an input condition.
		panic(fmt.Sprintf("scenario: fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
