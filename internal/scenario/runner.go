package scenario

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bounded"
	"repro/internal/des"
	"repro/internal/faults"
)

// Config tunes the runner's supervision defaults; each case can
// tighten them per spec.
type Config struct {
	// Workers is the execution pool size (default 2).
	Workers int
	// QueueCap bounds the submission queue; a full queue rejects with
	// ErrQueueFull — backpressure, never unbounded growth (default
	// 64).
	QueueCap int
	// WallDeadline is the default per-attempt wall-clock deadline
	// (default 2 m).
	WallDeadline time.Duration
	// MaxEvents is the default simulated-event deadline; 0 means no
	// limit.
	MaxEvents uint64
	// MaxAttempts is the default attempt cap for retryable faults
	// (default 3).
	MaxAttempts int
	// BackoffBase and BackoffMax bound the jittered exponential
	// backoff between retry attempts (defaults 100 ms and 5 s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Journal, when non-nil, receives every lifecycle transition.
	Journal *Journal
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.WallDeadline <= 0 {
		c.WallDeadline = 2 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	return c
}

// ErrQueueFull is the admission-control rejection: the submission
// queue is at capacity and the client should back off and retry.
var ErrQueueFull = errors.New("scenario: submission queue full")

// ErrDraining rejects submissions during shutdown.
var ErrDraining = errors.New("scenario: runner is draining")

// Suite groups runs for reporting.
type Suite struct {
	ID   string   `json:"id"`
	Name string   `json:"name"`
	Runs []string `json:"runs"`
}

// Runner is the supervisor: a bounded submission queue feeding a fixed
// worker pool, each run executing under its own context with
// deadlines, panic isolation, bounded retry and journaled state
// transitions.
type Runner struct {
	cfg Config

	mu        sync.Mutex
	queue     *bounded.Queue[*Run]
	runs      map[string]*Run
	suites    map[string]*Suite
	cancels   map[string]context.CancelFunc
	nextSuite int
	nextRun   int
	draining  bool

	wake    chan struct{}
	drainCh chan struct{}
	wg      sync.WaitGroup
}

// NewRunner builds a runner and recovers journaled history: runs the
// previous daemon process died holding come back as StateInterrupted,
// visible over the API and (optionally) resubmittable.
func NewRunner(cfg Config, recovered []Entry) *Runner {
	cfg = cfg.withDefaults()
	r := &Runner{
		cfg:     cfg,
		queue:   bounded.NewQueue[*Run](cfg.QueueCap),
		runs:    map[string]*Run{},
		suites:  map[string]*Suite{},
		cancels: map[string]context.CancelFunc{},
		wake:    make(chan struct{}, 1),
		drainCh: make(chan struct{}),
	}
	suiteNames, runs := Recover(recovered)
	for id, name := range suiteNames {
		r.suites[id] = &Suite{ID: id, Name: name}
		r.bumpCounter(&r.nextSuite, id)
	}
	for _, run := range runs {
		r.runs[run.ID] = run
		if s := r.suites[run.Suite]; s != nil {
			s.Runs = append(s.Runs, run.ID)
		}
		r.bumpCounter(&r.nextRun, run.ID)
	}
	return r
}

// bumpCounter advances an ID counter past a recovered "x-<n>" ID so
// new IDs never collide with journaled ones.
func (r *Runner) bumpCounter(ctr *int, id string) {
	if i := strings.LastIndexByte(id, '-'); i >= 0 {
		if n, err := strconv.Atoi(id[i+1:]); err == nil && n > *ctr {
			*ctr = n
		}
	}
}

// Start launches the worker pool.
func (r *Runner) Start() {
	for i := 0; i < r.cfg.Workers; i++ {
		r.wg.Add(1)
		go r.worker()
	}
}

// CreateSuite registers a named suite and journals it.
func (r *Runner) CreateSuite(name string) (*Suite, error) {
	if name == "" {
		return nil, fmt.Errorf("scenario: suite has no name")
	}
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return nil, ErrDraining
	}
	r.nextSuite++
	s := &Suite{ID: fmt.Sprintf("s-%d", r.nextSuite), Name: name}
	r.suites[s.ID] = s
	r.mu.Unlock()
	if err := r.cfg.Journal.Record(Entry{Type: EntrySuite, Time: time.Now(), Suite: s.ID, SuiteName: name}); err != nil {
		return nil, err
	}
	return s, nil
}

// Submit validates and enqueues one case under the suite. A full
// queue returns ErrQueueFull — the HTTP layer maps it to 503 +
// Retry-After.
func (r *Runner) Submit(suiteID string, spec CaseSpec) (*Run, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return nil, ErrDraining
	}
	s := r.suites[suiteID]
	if s == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("scenario: no suite %q", suiteID)
	}
	run := &Run{
		ID:          fmt.Sprintf("r-%d", r.nextRun+1),
		Suite:       suiteID,
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: time.Now(),
	}
	if !r.queue.Push(run) {
		r.mu.Unlock()
		return nil, ErrQueueFull
	}
	r.nextRun++
	r.runs[run.ID] = run
	s.Runs = append(s.Runs, run.ID)
	r.mu.Unlock()

	if err := r.cfg.Journal.Record(Entry{
		Type: EntrySubmitted, Time: run.SubmittedAt,
		Suite: suiteID, Run: run.ID, Spec: &spec,
	}); err != nil {
		return nil, err
	}
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return run, nil
}

// Resubmit re-queues a recovered interrupted run as a fresh run.
func (r *Runner) Resubmit(runID string) (*Run, error) {
	r.mu.Lock()
	old := r.runs[runID]
	if old == nil || old.State != StateInterrupted {
		r.mu.Unlock()
		return nil, fmt.Errorf("scenario: run %q is not an interrupted run", runID)
	}
	suite, spec := old.Suite, old.Spec
	r.mu.Unlock()
	return r.Submit(suite, spec)
}

// Cancel stops a run: queued runs terminate immediately, running runs
// get their context cancelled and finish as StateCancelled at the
// next checkpoint. Cancelling a terminal run is a no-op.
func (r *Runner) Cancel(runID string) error {
	r.mu.Lock()
	run := r.runs[runID]
	if run == nil {
		r.mu.Unlock()
		return fmt.Errorf("scenario: no run %q", runID)
	}
	switch run.State {
	case StateQueued:
		run.State = StateCancelled
		run.Error = &RunError{Kind: ErrCancelled, Message: "cancelled while queued"}
		run.FinishedAt = time.Now()
		r.mu.Unlock()
		return r.cfg.Journal.Record(Entry{
			Type: EntryFinished, Time: run.FinishedAt,
			Suite: run.Suite, Run: run.ID, State: StateCancelled, Error: run.Error,
		})
	case StateRunning:
		cancel := r.cancels[runID]
		r.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		r.mu.Unlock()
		return nil
	}
}

// snapshot copies a run under the runner's lock. Handlers need it for
// runs returned by Submit/Resubmit: by the time the HTTP response is
// encoded, a worker may already be flipping the run to StateRunning.
func (r *Runner) snapshot(run *Run) Run {
	r.mu.Lock()
	defer r.mu.Unlock()
	return run.Snapshot()
}

// GetRun returns a snapshot of the run.
func (r *Runner) GetRun(id string) (Run, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	run := r.runs[id]
	if run == nil {
		return Run{}, false
	}
	return run.Snapshot(), true
}

// GetSuite returns the suite and snapshots of its runs.
func (r *Runner) GetSuite(id string) (Suite, []Run, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.suites[id]
	if s == nil {
		return Suite{}, nil, false
	}
	runs := make([]Run, 0, len(s.Runs))
	for _, rid := range s.Runs {
		if run := r.runs[rid]; run != nil {
			runs = append(runs, run.Snapshot())
		}
	}
	return *s, runs, true
}

// Suites lists all suites.
func (r *Runner) Suites() []Suite {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Suite, 0, len(r.suites))
	for _, s := range r.suites {
		out = append(out, *s)
	}
	return out
}

// QueueDepth returns the current backlog and capacity.
func (r *Runner) QueueDepth() (depth, capacity int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queue.Len(), r.queue.Cap()
}

// Health is the live/schedulable snapshot readyz serves: a daemon is
// alive whenever it answers, but only schedulable when it is not
// draining and has queue headroom — the distinction a fleet
// coordinator (and the CI smoke) needs to route work.
type Health struct {
	QueueDepth int  `json:"queue"`
	QueueCap   int  `json:"queue_cap"`
	InFlight   int  `json:"in_flight"`
	Draining   bool `json:"draining"`
}

// Ready reports whether the runner can accept a submission right now.
func (h Health) Ready() bool {
	return !h.Draining && h.QueueDepth < h.QueueCap
}

// Health returns the current schedulability snapshot.
func (r *Runner) Health() Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	inFlight := 0
	for _, run := range r.runs {
		if run.State == StateRunning {
			inFlight++
		}
	}
	return Health{
		QueueDepth: r.queue.Len(),
		QueueCap:   r.queue.Cap(),
		InFlight:   inFlight,
		Draining:   r.draining,
	}
}

// Drain stops admissions, lets queued and running work finish, and
// returns when the pool is idle. If ctx expires first every live run
// is cancelled (finishing as StateCancelled) and Drain still waits for
// the workers to unwind before returning ctx's error — the pool never
// outlives the call.
func (r *Runner) Drain(ctx context.Context) error {
	r.mu.Lock()
	if !r.draining {
		r.draining = true
		close(r.drainCh)
	}
	r.mu.Unlock()

	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		r.cancelAll()
		<-done
		return ctx.Err()
	}
}

// cancelAll cancels every queued and running run.
func (r *Runner) cancelAll() {
	r.mu.Lock()
	var ids []string
	for id, run := range r.runs {
		if !run.State.Terminal() {
			ids = append(ids, id)
		}
	}
	r.mu.Unlock()
	for _, id := range ids {
		r.Cancel(id) //nolint:errcheck // best effort during forced drain
	}
}

func (r *Runner) worker() {
	defer r.wg.Done()
	for {
		run := r.next()
		if run == nil {
			return
		}
		r.execute(run)
	}
}

// next blocks for work; nil means the runner is draining and the
// queue is empty.
func (r *Runner) next() *Run {
	for {
		r.mu.Lock()
		if run, ok := r.queue.Pop(); ok {
			more := r.queue.Len() > 0
			r.mu.Unlock()
			if more {
				// Cascade the wakeup: a dropped signal (the wake
				// channel holds one token) must not strand queued work
				// behind a single busy worker.
				select {
				case r.wake <- struct{}{}:
				default:
				}
			}
			return run
		}
		draining := r.draining
		r.mu.Unlock()
		if draining {
			return nil
		}
		select {
		case <-r.wake:
		case <-r.drainCh:
		}
	}
}

// execute supervises one run to a terminal state.
func (r *Runner) execute(run *Run) {
	r.mu.Lock()
	if run.State != StateQueued { // cancelled while queued
		r.mu.Unlock()
		return
	}
	run.State = StateRunning
	run.StartedAt = time.Now()
	spec := run.Spec
	baseCtx, cancel := context.WithCancel(context.Background())
	r.cancels[run.ID] = cancel
	r.mu.Unlock()
	defer func() {
		cancel()
		r.mu.Lock()
		delete(r.cancels, run.ID)
		r.mu.Unlock()
	}()

	maxAttempts := spec.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = r.cfg.MaxAttempts
	}
	maxEvents := spec.MaxEvents
	if maxEvents == 0 {
		maxEvents = r.cfg.MaxEvents
	}
	wallDeadline := spec.WallDeadline(r.cfg.WallDeadline)
	baseSeed := int64(1)
	if spec.Tree != nil && spec.Tree.Seed != 0 {
		baseSeed = spec.Tree.Seed
	}

	for attempt := 1; ; attempt++ {
		r.mu.Lock()
		run.Attempts = attempt
		r.mu.Unlock()
		r.cfg.Journal.Record(Entry{ //nolint:errcheck // lifecycle goes on if the disk is gone
			Type: EntryStarted, Time: time.Now(),
			Suite: run.Suite, Run: run.ID, Attempt: attempt,
		})

		seed := AttemptSeed(baseSeed, attempt)
		var result *CaseResult
		var err error
		if (faults.InfraCrash{Prob: spec.InfraCrashProb}).Roll(seed) {
			err = faults.ErrInfraCrash
		} else {
			attemptCtx, attemptCancel := context.WithTimeout(baseCtx, wallDeadline)
			result, err = runAttempt(attemptCtx, &spec, seed, maxEvents)
			attemptCancel()
		}

		if err == nil {
			r.finish(run, StatePassed, nil, result)
			return
		}
		re := classify(err, attempt, baseCtx)
		if re.Kind == ErrInfra && attempt < maxAttempts {
			if !r.backoff(baseCtx, baseSeed, attempt) {
				r.finish(run, StateCancelled,
					&RunError{Kind: ErrCancelled, Message: "cancelled during retry backoff", Attempt: attempt}, nil)
				return
			}
			continue
		}
		state := StateFailed
		if re.Kind == ErrCancelled {
			state = StateCancelled
		}
		r.finish(run, state, re, nil)
		return
	}
}

// finish records the terminal state and journals it.
func (r *Runner) finish(run *Run, state State, re *RunError, result *CaseResult) {
	r.mu.Lock()
	run.State = state
	run.Error = re
	run.Result = result
	run.FinishedAt = time.Now()
	e := Entry{
		Type: EntryFinished, Time: run.FinishedAt,
		Suite: run.Suite, Run: run.ID, State: state, Error: re,
	}
	if result != nil {
		e.Fingerprint = result.Fingerprint
	}
	r.mu.Unlock()
	r.cfg.Journal.Record(e) //nolint:errcheck // the in-memory state is already terminal
}

// classify maps an executor error to its RunError kind. baseCtx
// distinguishes a client cancel (the run's own context was cancelled)
// from an attempt deadline (only the per-attempt timeout fired).
func classify(err error, attempt int, baseCtx context.Context) *RunError {
	return ClassifyError(err, attempt, baseCtx.Err() != nil)
}

// ClassifyError maps an executor error to its typed RunError.
// cancelled reports whether the run's own (not per-attempt) context
// was cancelled, which distinguishes a client/drain cancel from an
// attempt wall deadline. Exported for fleet workers, which supervise
// attempts themselves but must report the same error taxonomy the
// local runner records.
func ClassifyError(err error, attempt int, cancelled bool) *RunError {
	var pe *panicError
	var le *leakError
	switch {
	case errors.As(err, &pe):
		return &RunError{Kind: ErrPanic, Message: pe.value, Stack: pe.stack, Attempt: attempt}
	case errors.As(err, &le):
		return &RunError{Kind: ErrLeak, Message: le.Error(), Attempt: attempt}
	case errors.Is(err, faults.ErrInfraCrash):
		return &RunError{Kind: ErrInfra, Message: err.Error(), Attempt: attempt}
	case errors.Is(err, des.ErrEventLimit):
		return &RunError{Kind: ErrEventLimit, Message: err.Error(), Attempt: attempt}
	case errors.Is(err, context.Canceled) && cancelled:
		return &RunError{Kind: ErrCancelled, Message: err.Error(), Attempt: attempt}
	case errors.Is(err, context.DeadlineExceeded):
		return &RunError{Kind: ErrWallDeadline, Message: err.Error(), Attempt: attempt}
	default:
		return &RunError{Kind: ErrRun, Message: err.Error(), Attempt: attempt}
	}
}

// backoff sleeps the jittered exponential delay before the next
// attempt; false means the run was cancelled while waiting.
func (r *Runner) backoff(ctx context.Context, baseSeed int64, attempt int) bool {
	d := Backoff(r.cfg.BackoffBase, r.cfg.BackoffMax, baseSeed, attempt)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// AttemptSeed derives the scenario seed for a retry attempt. Attempt 1
// runs the base seed unchanged — a supervised first attempt is
// bit-identical to a solo run — and later attempts mix the attempt
// number in (des.DeriveSeed, the same splitmix derivation the sharded
// engine uses for per-shard RNG streams) so a retried run explores
// fresh randomness rather than deterministically re-hitting a
// seed-dependent failure.
func AttemptSeed(base int64, attempt int) int64 {
	if attempt <= 1 {
		return base
	}
	return des.DeriveSeed(base, int64(attempt))
}

// Backoff computes the deterministic jittered exponential delay before
// the given attempt's retry: base·2^(attempt-1), capped at max, scaled
// by a jitter in [0.5, 1.5) drawn from (seed, attempt). Determinism
// makes retry schedules replayable in tests; jitter keeps a burst of
// simultaneous failures from retrying in lockstep.
func Backoff(base, max time.Duration, seed int64, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	rng := des.NewRNG(AttemptSeed(seed, attempt+1) ^ 0x5bf03635)
	jitter := 0.5 + rng.Float64()
	j := time.Duration(float64(d) * jitter)
	if j > max {
		j = max
	}
	return j
}
