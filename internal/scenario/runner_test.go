package scenario

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
)

// quickTree is a small, fast tree case for lifecycle tests.
func quickTree(seed int64) *TreeSpec {
	return &TreeSpec{Leaves: 40, DurationSec: 20, Seed: seed}
}

// longTree runs long enough to be reliably caught in-flight.
func longTree(seed int64) *TreeSpec {
	return &TreeSpec{Leaves: 60, DurationSec: 2000, Seed: seed}
}

func newTestRunner(t *testing.T, cfg Config) *Runner {
	t.Helper()
	r := NewRunner(cfg, nil)
	r.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		r.Drain(ctx) //nolint:errcheck // best effort in cleanup
	})
	return r
}

func waitTerminal(t *testing.T, r *Runner, id string, timeout time.Duration) Run {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		run, ok := r.GetRun(id)
		if !ok {
			t.Fatalf("run %s vanished", id)
		}
		if run.State.Terminal() {
			return run
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in %s after %v", id, run.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func mustSuite(t *testing.T, r *Runner) *Suite {
	t.Helper()
	s, err := r.CreateSuite("test")
	if err != nil {
		t.Fatalf("CreateSuite: %v", err)
	}
	return s
}

func TestRunnerHealthyRun(t *testing.T) {
	r := newTestRunner(t, Config{Workers: 2})
	s := mustSuite(t, r)
	run, err := r.Submit(s.ID, CaseSpec{Name: "healthy", Tree: quickTree(7)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitTerminal(t, r, run.ID, 60*time.Second)
	if got.State != StatePassed {
		t.Fatalf("state = %s (err %+v), want passed", got.State, got.Error)
	}
	if got.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", got.Attempts)
	}
	if got.Result == nil || got.Result.Tree == nil || got.Result.Fingerprint == "" {
		t.Fatalf("missing result: %+v", got.Result)
	}
	if !got.Result.Tree.Leak.Clean() {
		t.Fatalf("passed run reported a dirty teardown: %+v", got.Result.Tree.Leak)
	}
}

// TestRunnerFingerprintMatchesSolo: a supervised first attempt must be
// bit-identical to executing the same spec outside the service.
func TestRunnerFingerprintMatchesSolo(t *testing.T) {
	spec := CaseSpec{Name: "fp", Tree: quickTree(11)}
	solo, err := runAttempt(context.Background(), &spec, 11, 0)
	if err != nil {
		t.Fatalf("solo attempt: %v", err)
	}

	r := newTestRunner(t, Config{Workers: 2})
	s := mustSuite(t, r)
	run, err := r.Submit(s.ID, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitTerminal(t, r, run.ID, 60*time.Second)
	if got.State != StatePassed {
		t.Fatalf("state = %s (err %+v)", got.State, got.Error)
	}
	if got.Result.Fingerprint != solo.Fingerprint {
		t.Fatalf("supervised fingerprint %s != solo %s", got.Result.Fingerprint, solo.Fingerprint)
	}
}

// TestRunnerPanicIsolation: a panicking case is recorded as failed
// with the stack, and the worker survives to run the next case.
func TestRunnerPanicIsolation(t *testing.T) {
	r := newTestRunner(t, Config{Workers: 1})
	s := mustSuite(t, r)
	boom, err := r.Submit(s.ID, CaseSpec{Name: "boom", PanicForTest: true, Tree: quickTree(1)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitTerminal(t, r, boom.ID, 30*time.Second)
	if got.State != StateFailed || got.Error == nil || got.Error.Kind != ErrPanic {
		t.Fatalf("state = %s, err %+v; want failed/panic", got.State, got.Error)
	}
	if !strings.Contains(got.Error.Stack, "executeCase") {
		t.Fatalf("panic stack missing executor frame:\n%s", got.Error.Stack)
	}
	// Panics are not retried.
	if got.Attempts != 1 {
		t.Fatalf("panic retried: attempts = %d", got.Attempts)
	}
	// The single worker must still be alive.
	next, err := r.Submit(s.ID, CaseSpec{Name: "after", Tree: quickTree(2)})
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	if got := waitTerminal(t, r, next.ID, 60*time.Second); got.State != StatePassed {
		t.Fatalf("run after panic: state = %s (err %+v)", got.State, got.Error)
	}
}

// crashPattern finds a base seed whose first n attempt-seeds crash and
// whose (n+1)-th survives under the given crash probability.
func crashPattern(prob float64, n int) (int64, bool) {
	ic := faults.InfraCrash{Prob: prob}
	for base := int64(1); base < 50000; base++ {
		ok := true
		for a := 1; a <= n; a++ {
			if !ic.Roll(AttemptSeed(base, a)) {
				ok = false
				break
			}
		}
		if ok && !ic.Roll(AttemptSeed(base, n+1)) {
			return base, true
		}
	}
	return 0, false
}

// TestRunnerRetriesInfraFault: injected harness mortality is retried
// with fresh attempt seeds until an attempt survives.
func TestRunnerRetriesInfraFault(t *testing.T) {
	base, ok := crashPattern(0.6, 2)
	if !ok {
		t.Fatal("no seed with crash-crash-survive pattern")
	}
	r := newTestRunner(t, Config{Workers: 1, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	s := mustSuite(t, r)
	run, err := r.Submit(s.ID, CaseSpec{
		Name: "flaky", Tree: quickTree(base), InfraCrashProb: 0.6, MaxAttempts: 3,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitTerminal(t, r, run.ID, 60*time.Second)
	if got.State != StatePassed {
		t.Fatalf("state = %s (err %+v), want passed after retries", got.State, got.Error)
	}
	if got.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", got.Attempts)
	}
}

// TestRunnerRetryCap: attempts are capped, and exhausting them on
// infra faults fails the run with the infra kind.
func TestRunnerRetryCap(t *testing.T) {
	base, ok := crashPattern(0.6, 3)
	if !ok {
		t.Fatal("no seed with three crashing attempts")
	}
	r := newTestRunner(t, Config{Workers: 1, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	s := mustSuite(t, r)
	run, err := r.Submit(s.ID, CaseSpec{
		Name: "doomed", Tree: quickTree(base), InfraCrashProb: 0.6, MaxAttempts: 3,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitTerminal(t, r, run.ID, 30*time.Second)
	if got.State != StateFailed || got.Error == nil || got.Error.Kind != ErrInfra {
		t.Fatalf("state = %s, err %+v; want failed/infra-fault", got.State, got.Error)
	}
	if got.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (capped)", got.Attempts)
	}
}

func TestAttemptSeedDerivation(t *testing.T) {
	if AttemptSeed(42, 1) != 42 {
		t.Fatal("attempt 1 must run the base seed unchanged")
	}
	seen := map[int64]int{42: 1}
	for a := 2; a <= 10; a++ {
		s := AttemptSeed(42, a)
		if prev, dup := seen[s]; dup {
			t.Fatalf("attempt %d seed collides with attempt %d", a, prev)
		}
		seen[s] = a
		if s != AttemptSeed(42, a) {
			t.Fatalf("attempt %d seed not deterministic", a)
		}
	}
}

func TestBackoffShape(t *testing.T) {
	base, cap := 100*time.Millisecond, 2*time.Second
	for attempt := 1; attempt <= 8; attempt++ {
		d := Backoff(base, cap, 7, attempt)
		if d != Backoff(base, cap, 7, attempt) {
			t.Fatalf("attempt %d backoff not deterministic", attempt)
		}
		raw := base << (attempt - 1)
		if raw > cap {
			raw = cap
		}
		lo := raw / 2
		if d < lo || d > cap {
			t.Fatalf("attempt %d backoff %v outside [%v, %v]", attempt, d, lo, cap)
		}
	}
	if Backoff(base, cap, 7, 1) == Backoff(base, cap, 8, 1) {
		t.Log("two seeds drew the same jitter (possible, but worth knowing)")
	}
}

// TestRunnerEventLimit: the simulated-event deadline fails the run
// without retry.
func TestRunnerEventLimit(t *testing.T) {
	r := newTestRunner(t, Config{Workers: 1})
	s := mustSuite(t, r)
	run, err := r.Submit(s.ID, CaseSpec{Name: "runaway", Tree: quickTree(3), MaxEvents: 500})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitTerminal(t, r, run.ID, 30*time.Second)
	if got.State != StateFailed || got.Error == nil || got.Error.Kind != ErrEventLimit {
		t.Fatalf("state = %s, err %+v; want failed/event-limit", got.State, got.Error)
	}
	if got.Attempts != 1 {
		t.Fatalf("event-limit retried: attempts = %d", got.Attempts)
	}
}

// TestRunnerWallDeadline: an attempt overrunning its wall-clock budget
// fails with the wall-deadline kind.
func TestRunnerWallDeadline(t *testing.T) {
	r := newTestRunner(t, Config{Workers: 1})
	s := mustSuite(t, r)
	run, err := r.Submit(s.ID, CaseSpec{
		Name: "slow", Tree: longTree(5), WallDeadlineSec: 0.05,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitTerminal(t, r, run.ID, 30*time.Second)
	if got.State != StateFailed || got.Error == nil || got.Error.Kind != ErrWallDeadline {
		t.Fatalf("state = %s, err %+v; want failed/wall-deadline", got.State, got.Error)
	}
}

// TestRunnerCancelRunning: cancelling an in-flight run stops it at the
// next checkpoint as cancelled, not failed.
func TestRunnerCancelRunning(t *testing.T) {
	r := newTestRunner(t, Config{Workers: 1})
	s := mustSuite(t, r)
	run, err := r.Submit(s.ID, CaseSpec{Name: "victim", Tree: longTree(6)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := r.GetRun(run.ID)
		if got.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never started (state %s)", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := r.Cancel(run.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	got := waitTerminal(t, r, run.ID, 30*time.Second)
	if got.State != StateCancelled || got.Error == nil || got.Error.Kind != ErrCancelled {
		t.Fatalf("state = %s, err %+v; want cancelled", got.State, got.Error)
	}
}

// TestRunnerQueueBackpressure: a full queue rejects with ErrQueueFull
// and queued runs can be cancelled before ever running.
func TestRunnerQueueBackpressure(t *testing.T) {
	r := newTestRunner(t, Config{Workers: 1, QueueCap: 2})
	s := mustSuite(t, r)
	blocker, err := r.Submit(s.ID, CaseSpec{Name: "blocker", Tree: longTree(8)})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	// Wait for the worker to take the blocker so the queue is empty.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := r.GetRun(blocker.ID)
		if got.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var queued []*Run
	for i := 0; i < 2; i++ {
		run, err := r.Submit(s.ID, CaseSpec{Name: "queued", Tree: quickTree(int64(20 + i))})
		if err != nil {
			t.Fatalf("Submit queued %d: %v", i, err)
		}
		queued = append(queued, run)
	}
	if _, err := r.Submit(s.ID, CaseSpec{Name: "overflow", Tree: quickTree(30)}); err != ErrQueueFull {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	// Cancel a queued run: it must terminate without running.
	if err := r.Cancel(queued[1].ID); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	if got, _ := r.GetRun(queued[1].ID); got.State != StateCancelled {
		t.Fatalf("queued cancel: state = %s", got.State)
	}
	// Unblock and drain: the surviving queued run completes.
	if err := r.Cancel(blocker.ID); err != nil {
		t.Fatalf("Cancel blocker: %v", err)
	}
	if got := waitTerminal(t, r, queued[0].ID, 60*time.Second); got.State != StatePassed {
		t.Fatalf("queued run: state = %s (err %+v)", got.State, got.Error)
	}
}

// TestRunnerDrainFinishesQueuedWork: a graceful drain runs everything
// already admitted before returning.
func TestRunnerDrainFinishesQueuedWork(t *testing.T) {
	r := NewRunner(Config{Workers: 2}, nil)
	r.Start()
	s, err := r.CreateSuite("drain")
	if err != nil {
		t.Fatalf("CreateSuite: %v", err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		run, err := r.Submit(s.ID, CaseSpec{Name: "work", Tree: quickTree(int64(40 + i))})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, run.ID)
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, id := range ids {
		if got, _ := r.GetRun(id); got.State != StatePassed {
			t.Fatalf("after drain, run %s state = %s (err %+v)", id, got.State, got.Error)
		}
	}
	if _, err := r.Submit(s.ID, CaseSpec{Name: "late", Tree: quickTree(1)}); err != ErrDraining {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
}

// TestRunnerForcedDrain: an expired drain deadline cancels live runs
// instead of waiting them out.
func TestRunnerForcedDrain(t *testing.T) {
	r := NewRunner(Config{Workers: 1}, nil)
	r.Start()
	s, err := r.CreateSuite("forced")
	if err != nil {
		t.Fatalf("CreateSuite: %v", err)
	}
	run, err := r.Submit(s.ID, CaseSpec{Name: "endless", Tree: longTree(9)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := r.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("forced drain err = %v, want DeadlineExceeded", err)
	}
	got, _ := r.GetRun(run.ID)
	if got.State != StateCancelled {
		t.Fatalf("after forced drain, state = %s (err %+v)", got.State, got.Error)
	}
}
