package scenario

import (
	"context"
	"fmt"
	"runtime/debug"

	"repro/internal/experiments"
)

// panicError carries a recovered executor panic to the supervisor.
type panicError struct {
	value string
	stack string
}

func (e *panicError) Error() string { return "panic: " + e.value }

// runAttempt executes one attempt with panic isolation: a panicking
// executor is recovered into a panicError (with the goroutine stack)
// instead of taking the worker — and the daemon — down with it.
func runAttempt(ctx context.Context, spec *CaseSpec, seed int64, maxEvents uint64) (res *CaseResult, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res = nil
			err = &panicError{value: fmt.Sprint(rec), stack: string(debug.Stack())}
		}
	}()
	return executeCase(ctx, spec, seed, maxEvents)
}

// ExecuteAttempt runs one panic-isolated attempt of a case — the unit
// a fleet worker executes on behalf of a coordinator. The caller owns
// the supervision envelope (context deadline, seed derivation, retry
// policy); ExecuteAttempt only guarantees a panicking executor comes
// back as a typed error instead of taking the worker process down.
func ExecuteAttempt(ctx context.Context, spec *CaseSpec, seed int64, maxEvents uint64) (*CaseResult, error) {
	return runAttempt(ctx, spec, seed, maxEvents)
}

// RunCaseSolo executes one case outside any supervision — no retries,
// deadlines, chaos or panic isolation. It is the isolation baseline:
// a healthy supervised first attempt must produce a result fingerprint
// bit-identical to RunCaseSolo with the same spec and seed.
func RunCaseSolo(spec *CaseSpec, seed int64) (*CaseResult, error) {
	return executeCase(context.Background(), spec, seed, 0)
}

// executeCase dispatches to the kind's executor.
func executeCase(ctx context.Context, spec *CaseSpec, seed int64, maxEvents uint64) (*CaseResult, error) {
	if spec.PanicForTest {
		panic("scenario: case requested a test panic")
	}
	switch spec.EffectiveKind() {
	case "tree":
		return executeTree(ctx, spec, seed, maxEvents)
	case "figure":
		return executeFigure(ctx, spec)
	default:
		return nil, fmt.Errorf("scenario: unknown case kind %q", spec.Kind)
	}
}

func executeTree(ctx context.Context, spec *CaseSpec, seed int64, maxEvents uint64) (*CaseResult, error) {
	ts := TreeSpec{}
	if spec.Tree != nil {
		ts = *spec.Tree
	}
	cfg, err := ts.Config()
	if err != nil {
		return nil, err
	}
	cfg.Seed = seed
	cfg.Context = ctx
	cfg.EventLimit = maxEvents
	res, err := experiments.RunTree(cfg)
	if err != nil {
		return nil, err
	}
	if !res.Leak.Clean() {
		return nil, &leakError{res.Leak}
	}
	tcr := &TreeCaseResult{
		MeanBefore:        res.MeanBefore,
		MeanDuringAttack:  res.MeanDuringAttack,
		AttackersCaptured: res.AttackersCaptured,
		CollateralBlocks:  res.CollateralBlocks,
		CaptureTimes:      res.CaptureTimes,
		CtrlMessages:      res.CtrlMessages,
		Ctrl:              res.Ctrl,
		Sec:               res.Sec,
		OpenSessionsAtEnd: res.OpenSessionsAtEnd,
		QueueDrops:        res.QueueDrops,
		EventsFired:       res.EventsFired,
		Leak:              res.Leak,
		Throughput:        res.Throughput,
	}
	return &CaseResult{Kind: "tree", Tree: tcr, Fingerprint: fingerprint(tcr)}, nil
}

func executeFigure(ctx context.Context, spec *CaseSpec) (*CaseResult, error) {
	gen, ok := experiments.Figures()[spec.Figure.Fig]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown figure %q", spec.Figure.Fig)
	}
	scale, err := figureScale(spec.Figure.Scale)
	if err != nil {
		return nil, err
	}
	scale.Ctx = ctx
	tab, err := gen(scale)
	if err != nil {
		return nil, err
	}
	fcr := &FigureCaseResult{Fig: spec.Figure.Fig, Title: tab.Title, Rendered: tab.Render()}
	return &CaseResult{Kind: "figure", Figure: fcr, Fingerprint: fingerprint(fcr)}, nil
}

// leakError reports a dirty teardown audit; the supervisor maps it to
// ErrLeak and refuses to count the run as passed.
type leakError struct {
	leak experiments.LeakReport
}

func (e *leakError) Error() string {
	return fmt.Sprintf("teardown leaked %d packets and %d defense state entries",
		e.leak.PacketsOutstanding, e.leak.DefenseState)
}
