package pushback

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/netsim"
)

func TestMaxMinShareBasics(t *testing.T) {
	cases := []struct {
		total   float64
		demands []float64
		want    []float64
	}{
		// Equal split when all demands exceed the share.
		{30, []float64{100, 100, 100}, []float64{10, 10, 10}},
		// Small demand keeps its demand; surplus redistributes.
		{30, []float64{5, 100, 100}, []float64{5, 12.5, 12.5}},
		// Total exceeds demand: everyone satisfied.
		{1000, []float64{5, 10, 15}, []float64{5, 10, 15}},
		// Zero demand gets nothing.
		{30, []float64{0, 100}, []float64{0, 30}},
		// Classic waterfill.
		{100, []float64{10, 30, 80}, []float64{10, 30, 60}},
	}
	for i, c := range cases {
		got := MaxMinShare(c.total, c.demands)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: len %d", i, len(got))
		}
		for j := range got {
			if math.Abs(got[j]-c.want[j]) > 1e-9 {
				t.Fatalf("case %d: got %v, want %v", i, got, c.want)
			}
		}
	}
}

func TestMaxMinShareEmpty(t *testing.T) {
	if got := MaxMinShare(10, nil); len(got) != 0 {
		t.Fatal("nil demands should give empty result")
	}
	got := MaxMinShare(0, []float64{1, 2})
	for _, v := range got {
		if v != 0 {
			t.Fatal("zero total must allocate nothing")
		}
	}
}

func TestMaxMinShareProperties(t *testing.T) {
	f := func(totalRaw uint16, demandsRaw []uint16) bool {
		total := float64(totalRaw)
		demands := make([]float64, len(demandsRaw))
		var sumD float64
		for i, d := range demandsRaw {
			demands[i] = float64(d)
			sumD += float64(d)
		}
		shares := MaxMinShare(total, demands)
		var sumS float64
		for i, s := range shares {
			if s < -1e-9 || s > demands[i]+1e-9 {
				return false // share within [0, demand]
			}
			sumS += s
		}
		want := math.Min(total, sumD)
		return math.Abs(sumS-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// pbRig: clients/attacker hosts -> access -> mid -> head -bottleneck-> gw -> server.
type pbRig struct {
	sim    *des.Simulator
	nw     *netsim.Network
	server *netsim.Node
	gw     *netsim.Node
	head   *netsim.Node
	mid    *netsim.Node
	access []*netsim.Node
	hosts  []*netsim.Node
}

// newPBRig builds a 2-level tree: head is the bottleneck router; two
// access routers hang off mid; hosts split between them.
func newPBRig(t testing.TB, hostsPerAccess int, bottleneck float64) *pbRig {
	t.Helper()
	sim := des.New()
	nw := netsim.New(sim)
	r := &pbRig{sim: sim, nw: nw}
	r.server = nw.AddNode("server")
	r.gw = nw.AddNode("gw")
	r.head = nw.AddNode("head")
	r.mid = nw.AddNode("mid")
	nw.Connect(r.gw, r.server, 1e8, 0.001)
	nw.Connect(r.head, r.gw, bottleneck, 0.005) // bottleneck link
	nw.Connect(r.mid, r.head, 1e8, 0.005)
	for i := 0; i < 2; i++ {
		ar := nw.AddNode("access")
		nw.Connect(ar, r.mid, 1e8, 0.005)
		r.access = append(r.access, ar)
		for j := 0; j < hostsPerAccess; j++ {
			h := nw.AddNode("host")
			nw.Connect(h, ar, 1e8, 0.001)
			r.hosts = append(r.hosts, h)
		}
	}
	nw.ComputeRoutes()
	return r
}

func flood(node *netsim.Node, dst netsim.NodeID, rate float64, legit bool, sim *des.Simulator) (stop func()) {
	interval := 1000 * 8 / rate
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		node.Send(&netsim.Packet{Src: node.ID, TrueSrc: node.ID, Dst: dst, Size: 1000, Type: netsim.Data, Legit: legit})
		sim.After(interval, tick)
	}
	sim.At(sim.Now(), tick)
	return func() { stopped = true }
}

func TestCongestionInstallsLimiter(t *testing.T) {
	r := newPBRig(t, 1, 1e6) // 1 Mb/s bottleneck
	d, err := New(r.nw, []netsim.NodeID{r.server.ID}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d.DeployRouters([]*netsim.Node{r.gw, r.head, r.mid, r.access[0], r.access[1]})
	d.Start()
	// Two hosts flooding 2 Mb/s each into a 1 Mb/s bottleneck.
	r.sim.At(0, func() {
		flood(r.hosts[0], r.server.ID, 2e6, false, r.sim)
		flood(r.hosts[1], r.server.ID, 2e6, false, r.sim)
	})
	if err := r.sim.RunUntil(2.5); err != nil {
		t.Fatal(err)
	}
	headAgent := d.Agent(r.head.ID)
	if headAgent.Congestions == 0 {
		t.Fatal("bottleneck congestion never detected")
	}
	if headAgent.Limiter(r.server.ID) == 0 {
		t.Fatal("no limiter installed at the congested router")
	}
	if err := r.sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	// Pushback propagated upstream to mid and the access routers.
	if d.Agent(r.mid.ID).RequestsReceived == 0 {
		t.Fatal("pushback did not reach the upstream router")
	}
	if d.RequestsSent == 0 || d.LimitDrops == 0 {
		t.Fatalf("pushback stats empty: sent=%d drops=%d", d.RequestsSent, d.LimitDrops)
	}
}

func TestRateLimitingReducesAggregate(t *testing.T) {
	r := newPBRig(t, 1, 1e6)
	// SustainIntervals 1 isolates the limiting machinery from the
	// engage/release oscillation that the sustained-detection default
	// adds.
	d, err := New(r.nw, []netsim.NodeID{r.server.ID}, Config{SustainIntervals: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.DeployRouters([]*netsim.Node{r.gw, r.head, r.mid, r.access[0], r.access[1]})
	d.Start()
	delivered := 0
	r.server.Handler = func(p *netsim.Packet, in *netsim.Port) { delivered += p.Size }
	r.sim.At(0, func() {
		flood(r.hosts[0], r.server.ID, 4e6, false, r.sim)
	})
	if err := r.sim.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	// Without limits the bottleneck alone caps delivery at 1 Mb/s =
	// 2.5 MB over 20 s. With ACC the aggregate must be squeezed well
	// below the raw bottleneck capacity.
	rawCap := 1e6 * 20 / 8
	if float64(delivered) > 0.95*rawCap {
		t.Fatalf("delivered %d bytes; rate limiting ineffective (cap %d)", delivered, int(rawCap))
	}
	if delivered == 0 {
		t.Fatal("aggregate throttled to zero; floor not applied")
	}
}

func TestLimiterExpiresAfterAttack(t *testing.T) {
	r := newPBRig(t, 1, 1e6)
	d, err := New(r.nw, []netsim.NodeID{r.server.ID}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d.DeployRouters([]*netsim.Node{r.gw, r.head, r.mid, r.access[0], r.access[1]})
	d.Start()
	var stop func()
	r.sim.At(0, func() { stop = flood(r.hosts[0], r.server.ID, 4e6, false, r.sim) })
	r.sim.At(10, func() { stop() })
	if err := r.sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if d.ActiveLimiters() == 0 {
		t.Fatal("no limiters during attack")
	}
	if err := r.sim.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	if n := d.ActiveLimiters(); n != 0 {
		t.Fatalf("%d limiters still active 20 s after the attack ended", n)
	}
}

func TestMaxMinPunishesSharedPath(t *testing.T) {
	// The collateral-damage mechanism of Sec. 8.4.1: a legitimate
	// client sharing its access router (and thus the final rate-limit
	// bucket) with a high-rate attacker gets squeezed, because
	// pushback stops at routers and the shared bucket is blind to
	// which packets are legitimate.
	r := newPBRig(t, 2, 1e6)
	d, err := New(r.nw, []netsim.NodeID{r.server.ID}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d.DeployRouters([]*netsim.Node{r.gw, r.head, r.mid, r.access[0], r.access[1]})
	d.Start()
	var legitBytes int
	r.server.Handler = func(p *netsim.Packet, in *netsim.Port) {
		if p.Legit {
			legitBytes += p.Size
		}
	}
	r.sim.At(0, func() {
		flood(r.hosts[0], r.server.ID, 0.4e6, true, r.sim) // client at 0.4 Mb/s
		flood(r.hosts[1], r.server.ID, 4e6, false, r.sim)  // attacker at 4 Mb/s
	})
	if err := r.sim.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	// Client alone would deliver 0.4 Mb/s * 30 s / 8 = 1.5 MB. Under
	// aggregate punishment it must land well below that.
	ideal := 0.4e6 * 30 / 8
	if float64(legitBytes) > 0.8*ideal {
		t.Fatalf("legitimate traffic barely affected (%d of %d); collateral damage mechanism missing", legitBytes, int(ideal))
	}
	if legitBytes == 0 {
		t.Fatal("legitimate traffic fully silenced; floor missing")
	}
}

func TestControlMessagesNotLimited(t *testing.T) {
	r := newPBRig(t, 1, 1e6)
	d, err := New(r.nw, []netsim.NodeID{r.server.ID}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d.DeployRouters([]*netsim.Node{r.gw, r.head, r.mid, r.access[0], r.access[1]})
	d.Start()
	got := 0
	r.server.Handler = func(p *netsim.Packet, in *netsim.Port) {
		if p.Type == netsim.Control {
			got++
		}
	}
	r.sim.At(0, func() { flood(r.hosts[0], r.server.ID, 4e6, false, r.sim) })
	// Control probe every second through the congested path.
	r.sim.Every(0.5, 1, func() {
		r.hosts[1].Send(&netsim.Packet{Src: r.hosts[1].ID, TrueSrc: r.hosts[1].ID, Dst: r.server.ID, Size: 64, Type: netsim.Control})
	})
	if err := r.sim.RunUntil(15); err != nil {
		t.Fatal(err)
	}
	if got < 14 {
		t.Fatalf("control packets were rate-limited: %d/15 delivered", got)
	}
}

func TestForgedPushbackRequestRejected(t *testing.T) {
	r := newPBRig(t, 1, 1e6)
	d, err := New(r.nw, []netsim.NodeID{r.server.ID}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d.DeployRouters([]*netsim.Node{r.gw, r.head, r.mid, r.access[0], r.access[1]})
	d.Start()
	// A host forges a pushback request to its access router, trying to
	// throttle the server aggregate to near zero. The request comes
	// from a non-deploying neighbor (a host), so it must be ignored.
	req := &request{Agg: 0, Limit: 1, Depth: 0}
	r.sim.At(1, func() {
		r.hosts[0].Send(&netsim.Packet{Src: r.hosts[0].ID, TrueSrc: r.hosts[0].ID, Dst: r.access[0].ID, Size: 64, Type: netsim.Control, Payload: req})
	})
	if err := r.sim.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if d.Agent(r.access[0].ID).Limiter(r.server.ID) != 0 {
		t.Fatal("forged pushback request installed a limiter")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Config{}); err == nil {
		t.Fatal("nil args accepted")
	}
	sim := des.New()
	nw := netsim.New(sim)
	if _, err := New(nw, nil, Config{}); err == nil {
		t.Fatal("empty defended set accepted")
	}
}

func TestSustainedCongestionRequired(t *testing.T) {
	// A single congested interval (transient burst) must not install
	// a limiter; sustained overload must.
	r := newPBRig(t, 1, 1e6)
	d, err := New(r.nw, []netsim.NodeID{r.server.ID}, Config{SustainIntervals: 3})
	if err != nil {
		t.Fatal(err)
	}
	d.DeployRouters([]*netsim.Node{r.gw, r.head, r.mid, r.access[0], r.access[1]})
	d.Start()
	// One 0.5 s burst at 4 Mb/s into the 1 Mb/s bottleneck: congests
	// exactly one ACC interval.
	var stop func()
	r.sim.At(0.2, func() { stop = flood(r.hosts[0], r.server.ID, 4e6, false, r.sim) })
	r.sim.At(0.7, func() { stop() })
	if err := r.sim.RunUntil(6); err != nil {
		t.Fatal(err)
	}
	if d.LimitersCreated != 0 {
		t.Fatalf("transient burst installed %d limiters despite SustainIntervals=3", d.LimitersCreated)
	}
	// Sustained overload crosses the streak requirement.
	r.sim.At(r.sim.Now(), func() { flood(r.hosts[0], r.server.ID, 4e6, false, r.sim) })
	if err := r.sim.RunUntil(r.sim.Now() + 8); err != nil {
		t.Fatal(err)
	}
	if d.LimitersCreated == 0 {
		t.Fatal("sustained overload never installed a limiter")
	}
}
