package pushback

import (
	"sort"

	"repro/internal/netsim"
)

// limiter is a token-bucket rate limiter for one destination
// aggregate at one router.
type limiter struct {
	agg   int     // aggregate group
	rate  float64 // bits/s
	depth int     // remaining pushback depth
	// self marks a limiter installed by local ACC congestion
	// detection (as opposed to a downstream pushback request).
	self bool

	tokens     float64 // bytes
	lastRefill float64
	expiresAt  float64

	Drops     int64
	lastDrops int64
}

func (l *limiter) burstBytes(cfg *Config) float64 {
	b := l.rate * cfg.Burst / 8
	if b < 3000 {
		b = 3000 // at least a couple of full packets
	}
	return b
}

// allow implements the token bucket: refill by elapsed time, then
// spend size bytes if available.
func (l *limiter) allow(now float64, size int, cfg *Config) bool {
	elapsed := now - l.lastRefill
	if elapsed > 0 {
		l.tokens += l.rate * elapsed / 8
		l.lastRefill = now
	}
	if max := l.burstBytes(cfg); l.tokens > max {
		l.tokens = max
	}
	if l.tokens >= float64(size) {
		l.tokens -= float64(size)
		return true
	}
	l.Drops++
	return false
}

// dstAcct accumulates one interval of arrival accounting for one
// defended destination at one router.
type dstAcct struct {
	totalBytes float64
	perIn      map[*netsim.Port]float64
	perOut     map[*netsim.Port]float64
}

// portSnap remembers cumulative queue counters to compute per-interval
// deltas, plus the current congestion streak.
type portSnap struct {
	enq, drops int64
	streak     int
}

// Agent is ACC/Pushback on one router.
type Agent struct {
	Node *netsim.Node
	d    *Deployment

	limiters map[int]*limiter
	acct     map[int]*dstAcct
	snaps    map[*netsim.Port]portSnap

	// Stats
	Congestions      int64
	RequestsReceived int64
}

func newAgent(d *Deployment, n *netsim.Node) *Agent {
	a := &Agent{
		Node:     n,
		d:        d,
		limiters: map[int]*limiter{},
		acct:     map[int]*dstAcct{},
		snaps:    map[*netsim.Port]portSnap{},
	}
	n.AddHook(netsim.ForwardFunc(a.hook))
	n.Handler = a.handleControl
	for _, pt := range n.Ports() {
		a.snaps[pt] = portSnap{}
	}
	return a
}

// Limiter returns the current rate limit applying to destination dst
// in bits/s, or 0 if none is installed.
func (a *Agent) Limiter(dst netsim.NodeID) float64 {
	agg, ok := a.d.aggOf[dst]
	if !ok {
		return 0
	}
	if l, ok := a.limiters[agg]; ok {
		return l.rate
	}
	return 0
}

// sortedAggs returns the aggregate ids with accounting state this
// interval, ascending.
func (a *Agent) sortedAggs() []int {
	aggs := make([]int, 0, len(a.acct))
	for agg := range a.acct {
		aggs = append(aggs, agg)
	}
	sort.Ints(aggs)
	return aggs
}

// hook does per-aggregate accounting and enforces installed limiters
// on the forwarding path.
func (a *Agent) hook(n *netsim.Node, p *netsim.Packet, in, out *netsim.Port) bool {
	if p.Type == netsim.Control {
		return true
	}
	agg, isAgg := a.d.aggOf[p.Dst]
	if !isAgg {
		return true
	}
	acc, ok := a.acct[agg]
	if !ok {
		acc = &dstAcct{perIn: map[*netsim.Port]float64{}, perOut: map[*netsim.Port]float64{}}
		a.acct[agg] = acc
	}
	acc.totalBytes += float64(p.Size)
	if in != nil {
		acc.perIn[in] += float64(p.Size)
	}
	acc.perOut[out] += float64(p.Size)

	if l, ok := a.limiters[agg]; ok {
		now := a.d.sim.Now()
		if now < l.expiresAt && !l.allow(now, p.Size, &a.d.Cfg) {
			a.d.LimitDrops++
			return false
		}
	}
	return true
}

// handleControl processes pushback requests from downstream routers.
func (a *Agent) handleControl(p *netsim.Packet, in *netsim.Port) {
	req, ok := p.Payload.(*request)
	if !ok || p.Type != netsim.Control {
		return
	}
	// ACC-style authentication: requests must come from an adjacent
	// deploying router (TTL untouched by intermediate hops).
	if in == nil || p.TTL != netsim.DefaultTTL {
		return
	}
	if a.d.Agent(in.Peer().Node().ID) == nil {
		return
	}
	a.RequestsReceived++
	if req.Agg < 0 || req.Agg >= a.d.numGroups {
		return
	}
	a.installLimiter(req.Agg, req.Limit, req.Depth, false)
}

func (a *Agent) installLimiter(agg int, rate float64, depth int, self bool) *limiter {
	now := a.d.sim.Now()
	l, ok := a.limiters[agg]
	if !ok {
		l = &limiter{agg: agg, lastRefill: now}
		l.tokens = 0
		a.limiters[agg] = l
		a.d.LimitersCreated++
	}
	l.rate = rate
	l.depth = depth
	l.self = self || l.self
	l.expiresAt = now + float64(a.d.Cfg.ExpiryIntervals)*a.d.Cfg.Interval
	return l
}

// tick runs one ACC control interval: detect congestion, refresh the
// local limiter, propagate upstream shares, expire stale limiters,
// and reset accounting.
func (a *Agent) tick() {
	cfg := &a.d.Cfg
	now := a.d.sim.Now()

	// 1. Congestion detection per output port.
	for _, pt := range a.Node.Ports() {
		prev := a.snaps[pt]
		cur := portSnap{enq: pt.QueueEnqueued(), drops: pt.QueueDrops()}
		cur.streak = prev.streak
		dEnq := cur.enq - prev.enq
		dDrop := cur.drops - prev.drops
		total := dEnq + dDrop
		if total == 0 || float64(dDrop)/float64(total) < cfg.DropRateThreshold {
			cur.streak = 0
			a.snaps[pt] = cur
			continue
		}
		cur.streak++
		a.snaps[pt] = cur
		// Sustained-congestion requirement: transient bursts of a
		// well-behaved load must not trigger aggregate control.
		if cur.streak < cfg.SustainIntervals {
			continue
		}
		a.Congestions++
		// 2. Identify the dominant defended aggregate on this port.
		// Scanned in sorted aggregate order: on a byte-count tie the
		// smallest aggregate wins, instead of whichever the map
		// yielded first.
		worst := -1
		var worstBytes, portBytes float64
		for _, agg := range a.sortedAggs() {
			b := a.acct[agg].perOut[pt]
			portBytes += b
			if b > worstBytes {
				worstBytes, worst = b, agg
			}
		}
		if worst < 0 || portBytes == 0 || worstBytes/portBytes < cfg.MinAggregateShare {
			continue
		}
		capacity := pt.Link().Bandwidth
		otherRate := (portBytes - worstBytes) * 8 / cfg.Interval
		limit := capacity*cfg.TargetUtil - otherRate
		if floor := capacity * cfg.FloorFraction; limit < floor {
			limit = floor
		}
		a.installLimiter(worst, limit, cfg.MaxDepth, true)
	}

	// 3. Propagate every live limiter upstream with max–min shares of
	// the contributing input ports. A SELF-installed limiter that
	// dropped packets this interval is still needed and refreshes
	// itself (a working limiter removes the very queue drops that
	// triggered it); requested limiters live only as long as the
	// downstream router keeps asking, so releases propagate down the
	// tree when the pressure ends.
	// Sorted: the body sends request packets upstream, so iteration
	// order is visible as simulated message order.
	liveAggs := make([]int, 0, len(a.limiters))
	for agg := range a.limiters {
		liveAggs = append(liveAggs, agg)
	}
	sort.Ints(liveAggs)
	for _, agg := range liveAggs {
		l := a.limiters[agg]
		if l.self && l.Drops > l.lastDrops {
			l.lastDrops = l.Drops
			l.expiresAt = now + float64(cfg.ExpiryIntervals)*cfg.Interval
		}
		if now >= l.expiresAt {
			delete(a.limiters, agg)
			continue
		}
		if l.depth <= 0 {
			continue
		}
		acc, ok := a.acct[agg]
		if !ok || len(acc.perIn) == 0 {
			continue
		}
		ports := make([]*netsim.Port, 0, len(acc.perIn))
		demands := make([]float64, 0, len(acc.perIn))
		inPorts := make([]*netsim.Port, 0, len(acc.perIn))
		for pt := range acc.perIn {
			inPorts = append(inPorts, pt)
		}
		// Port index order fixes both the max–min share assignment
		// and the upstream request order.
		sort.Slice(inPorts, func(i, j int) bool { return inPorts[i].Index() < inPorts[j].Index() })
		for _, pt := range inPorts {
			up := pt.Peer().Node()
			if a.d.Agent(up.ID) == nil {
				continue // host or non-deploying neighbor
			}
			ports = append(ports, pt)
			demands = append(demands, acc.perIn[pt]*8/cfg.Interval)
		}
		if len(ports) == 0 {
			continue
		}
		var shares []float64
		if cfg.WeightedShares && a.d.HostWeight != nil {
			weights := make([]float64, len(ports))
			for i, pt := range ports {
				weights[i] = a.d.HostWeight(pt)
			}
			shares = WeightedMaxMinShare(l.rate, demands, weights)
		} else {
			shares = MaxMinShare(l.rate, demands)
		}
		for i, pt := range ports {
			share := shares[i] * cfg.ShareSlack
			if demands[i] <= 0 || share <= 0 {
				continue
			}
			a.d.RequestsSent++
			pp := a.Node.NewPacket()
			*pp = netsim.Packet{
				Src:     a.Node.ID,
				TrueSrc: a.Node.ID,
				Dst:     pt.Peer().Node().ID,
				Size:    64,
				Type:    netsim.Control,
				Payload: &request{Agg: agg, Limit: share, Depth: l.depth - 1},
			}
			a.Node.Send(pp)
		}
	}

	// 4. Reset interval accounting.
	a.acct = map[int]*dstAcct{}
}
