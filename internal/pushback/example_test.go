package pushback_test

import (
	"fmt"

	"repro/internal/pushback"
)

// Plain max–min: small demands are satisfied, big ones capped
// equally — blind to how many hosts hide behind each demand.
func ExampleMaxMinShare() {
	shares := pushback.MaxMinShare(30, []float64{5, 100, 100})
	fmt.Printf("%.1f\n", shares)
	// Output: [5.0 12.5 12.5]
}

// Weighted (level-k) max–min: a port fronting 30 clients earns a
// 30x share over a port fronting one attacker.
func ExampleWeightedMaxMinShare() {
	shares := pushback.WeightedMaxMinShare(31, []float64{100, 100}, []float64{1, 30})
	fmt.Printf("%.1f\n", shares)
	// Output: [1.0 30.0]
}
