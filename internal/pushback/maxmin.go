// Package pushback implements the ACC/Pushback baseline of Mahajan et
// al. that the paper compares against (Sec. 2, Sec. 8): routers detect
// sustained drop-tail congestion on an output link, identify the
// dominant destination aggregate, rate-limit it locally, and push the
// limit upstream, dividing it among contributing input ports in
// max–min fashion. The hop-by-hop max–min division — blind to how many
// end hosts sit behind each port — is exactly what the paper blames
// for Pushback's collateral damage with close-in attackers (Sec.
// 8.4.1).
package pushback

// MaxMinShare divides a total limit among demands in max–min fashion:
// repeatedly grant every unsatisfied demand an equal share of what
// remains; demands below their share keep their demand and release the
// surplus. The returned slice aligns with demands and sums to
// min(total, sum(demands)).
func MaxMinShare(total float64, demands []float64) []float64 {
	n := len(demands)
	out := make([]float64, n)
	if n == 0 || total <= 0 {
		return out
	}
	remaining := total
	unsat := make([]int, 0, n)
	for i, d := range demands {
		if d > 0 {
			unsat = append(unsat, i)
		}
	}
	for len(unsat) > 0 && remaining > 1e-12 {
		share := remaining / float64(len(unsat))
		progressed := false
		next := unsat[:0]
		for _, i := range unsat {
			if demands[i]-out[i] <= share {
				// Fully satisfiable: grant the rest of its demand.
				grant := demands[i] - out[i]
				out[i] += grant
				remaining -= grant
				progressed = true
			} else {
				next = append(next, i)
			}
		}
		unsat = next
		if !progressed {
			// Everyone needs at least the equal share: split evenly.
			for _, i := range unsat {
				out[i] += share
			}
			remaining -= share * float64(len(unsat))
			break
		}
	}
	return out
}

// WeightedMaxMinShare is max–min with per-demand weights: each round
// grants unsatisfied demands a share proportional to their weight.
// It models level-k max–min fairness (Yau et al.), which the paper
// discusses as a fix for plain Pushback's per-port blindness: with
// weights set to the number of end hosts behind each port, a port
// fronting a large client population is no longer squeezed to the
// same share as a port fronting one attacker. Zero or negative
// weights are treated as weight 1.
func WeightedMaxMinShare(total float64, demands, weights []float64) []float64 {
	n := len(demands)
	out := make([]float64, n)
	if n == 0 || total <= 0 {
		return out
	}
	w := make([]float64, n)
	for i := range w {
		if i < len(weights) && weights[i] > 0 {
			w[i] = weights[i]
		} else {
			w[i] = 1
		}
	}
	remaining := total
	unsat := make([]int, 0, n)
	for i, d := range demands {
		if d > 0 {
			unsat = append(unsat, i)
		}
	}
	for len(unsat) > 0 && remaining > 1e-12 {
		var wsum float64
		for _, i := range unsat {
			wsum += w[i]
		}
		progressed := false
		next := unsat[:0]
		for _, i := range unsat {
			share := remaining * w[i] / wsum
			if demands[i]-out[i] <= share {
				grant := demands[i] - out[i]
				out[i] += grant
				progressed = true
			} else {
				next = append(next, i)
			}
		}
		// Recompute what was granted this round.
		var granted float64
		for i := range out {
			granted += out[i]
		}
		remaining = total - granted
		unsat = next
		if !progressed {
			for _, i := range unsat {
				out[i] += remaining * w[i] / wsum
			}
			break
		}
	}
	return out
}
