package pushback

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedMaxMinBasics(t *testing.T) {
	cases := []struct {
		total            float64
		demands, weights []float64
		want             []float64
	}{
		// Equal weights degenerate to plain max-min.
		{30, []float64{100, 100, 100}, []float64{1, 1, 1}, []float64{10, 10, 10}},
		// A 3x weight earns a 3x share.
		{40, []float64{100, 100}, []float64{3, 1}, []float64{30, 10}},
		// Small demand satisfied; surplus redistributes by weight.
		{40, []float64{5, 100, 100}, []float64{1, 1, 1}, []float64{5, 17.5, 17.5}},
		// Total exceeds demand: everyone satisfied regardless of
		// weights.
		{1000, []float64{5, 10}, []float64{9, 1}, []float64{5, 10}},
	}
	for i, c := range cases {
		got := WeightedMaxMinShare(c.total, c.demands, c.weights)
		for j := range c.want {
			if math.Abs(got[j]-c.want[j]) > 1e-6 {
				t.Fatalf("case %d: got %v, want %v", i, got, c.want)
			}
		}
	}
}

func TestWeightedMaxMinDefaultsWeights(t *testing.T) {
	// Zero/negative/missing weights behave as weight 1.
	got := WeightedMaxMinShare(30, []float64{100, 100, 100}, []float64{0, -5, 0})
	for _, v := range got {
		if math.Abs(v-10) > 1e-9 {
			t.Fatalf("bad default weighting: %v", got)
		}
	}
	got = WeightedMaxMinShare(20, []float64{100, 100}, nil)
	if math.Abs(got[0]-10) > 1e-9 || math.Abs(got[1]-10) > 1e-9 {
		t.Fatalf("nil weights: %v", got)
	}
}

func TestWeightedMaxMinProperties(t *testing.T) {
	f := func(totalRaw uint16, raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		total := float64(totalRaw)
		n := len(raw) / 2
		demands := make([]float64, n)
		weights := make([]float64, n)
		var sumD float64
		for i := 0; i < n; i++ {
			demands[i] = float64(raw[i])
			weights[i] = float64(raw[n+i]%8) + 1
			sumD += demands[i]
		}
		shares := WeightedMaxMinShare(total, demands, weights)
		var sumS float64
		for i, s := range shares {
			if s < -1e-9 || s > demands[i]+1e-6 {
				return false
			}
			sumS += s
		}
		want := math.Min(total, sumD)
		return math.Abs(sumS-want) < 1e-4*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSharesProtectClientHeavyPort(t *testing.T) {
	// Level-k motivation: one attacker behind port A, thirty clients
	// behind port B. Plain max-min grants each port half the limit;
	// the weighted version grants B ~30x more.
	demands := []float64{4e6, 3e6} // attacker port, client port
	limit := 2e6
	plain := MaxMinShare(limit, demands)
	weighted := WeightedMaxMinShare(limit, demands, []float64{1, 30})
	if plain[1] > limit*0.55 {
		t.Fatalf("plain max-min unexpectedly favours the client port: %v", plain)
	}
	if weighted[1] < limit*0.9 {
		t.Fatalf("weighted shares fail to protect the client port: %v", weighted)
	}
	if weighted[0] > limit*0.1 {
		t.Fatalf("weighted shares over-grant the attacker port: %v", weighted)
	}
}
