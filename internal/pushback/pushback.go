package pushback

import (
	"errors"
	"sort"

	"repro/internal/des"
	"repro/internal/netsim"
)

// Config tunes the ACC/Pushback deployment.
type Config struct {
	// Interval is the ACC control period in seconds (default 1).
	Interval float64
	// DropRateThreshold declares an output link congested when its
	// data-lane drop fraction over one interval exceeds it (default
	// 0.05).
	DropRateThreshold float64
	// TargetUtil is the utilization the rate limit aims the aggregate
	// at: limit = capacity*TargetUtil − other traffic (default 0.9).
	TargetUtil float64
	// FloorFraction bounds the limit from below as a fraction of link
	// capacity, so an aggregate is never throttled to zero (default
	// 0.02).
	FloorFraction float64
	// MinAggregateShare is the arrival share a destination must hold
	// on the congested link before being singled out as the
	// misbehaving aggregate (default 0.3).
	MinAggregateShare float64
	// MaxDepth bounds upstream propagation in hops (default 32,
	// effectively unbounded on the simulated trees).
	MaxDepth int
	// ExpiryIntervals is how many refresh-free intervals an upstream
	// limiter survives (default 3).
	ExpiryIntervals int
	// Burst is the token-bucket depth in packets-worth of bytes at
	// the limit rate (default 0.1 s worth).
	Burst float64
	// SustainIntervals is how many consecutive congested intervals a
	// port must show before ACC installs a limiter (default 2 —
	// Mahajan's "sustained congestion" requirement; 1 reacts to any
	// single bad interval).
	SustainIntervals int
	// ShareSlack multiplies propagated upstream shares so steady
	// flows are not capped at exactly their measured rate (default
	// 1.0 — no slack, the classic Pushback division).
	ShareSlack float64
	// WeightedShares switches upstream share division from plain
	// per-port max-min to host-count-weighted max-min, modelling
	// level-k max-min fairness (Sec. 2's mitigation comparator).
	// Requires Deployment.HostWeight.
	WeightedShares bool
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 1
	}
	if c.DropRateThreshold <= 0 {
		c.DropRateThreshold = 0.05
	}
	if c.TargetUtil <= 0 {
		c.TargetUtil = 0.9
	}
	if c.FloorFraction <= 0 {
		c.FloorFraction = 0.02
	}
	if c.MinAggregateShare <= 0 {
		c.MinAggregateShare = 0.3
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 32
	}
	if c.ExpiryIntervals <= 0 {
		c.ExpiryIntervals = 3
	}
	if c.Burst <= 0 {
		c.Burst = 0.1
	}
	if c.SustainIntervals <= 0 {
		c.SustainIntervals = 2
	}
	if c.ShareSlack <= 0 {
		c.ShareSlack = 1.0
	}
}

// request is the pushback control payload: limit the aggregate group
// Agg to Limit bits/s, propagating at most Depth further hops.
type request struct {
	Agg   int
	Limit float64
	Depth int
}

// Deployment runs ACC/Pushback over a network.
type Deployment struct {
	Cfg Config
	sim *des.Simulator
	net *netsim.Network

	// aggOf maps a defended destination to its aggregate group.
	// ACC identifies aggregates by destination prefix; a replicated
	// server pool shares one prefix, so New places every defended
	// destination in a single group (use NewGroups for several).
	aggOf     map[netsim.NodeID]int
	numGroups int

	agents map[netsim.NodeID]*Agent
	stop   func()

	// HostWeight returns the number of end hosts reachable through a
	// port (used by WeightedShares). The experiments compute it from
	// the topology; a real deployment would use the level-k protocol
	// of Yau et al.
	HostWeight func(*netsim.Port) float64

	// Stats
	RequestsSent    int64
	LimitersCreated int64
	LimitDrops      int64
}

// New builds a deployment defending the given destination set as one
// prefix aggregate.
func New(nw *netsim.Network, defended []netsim.NodeID, cfg Config) (*Deployment, error) {
	if len(defended) == 0 {
		return nil, errors.New("pushback: empty defended set")
	}
	return NewGroups(nw, [][]netsim.NodeID{defended}, cfg)
}

// NewGroups builds a deployment with one aggregate per destination
// group (prefix).
func NewGroups(nw *netsim.Network, groups [][]netsim.NodeID, cfg Config) (*Deployment, error) {
	if nw == nil || len(groups) == 0 {
		return nil, errors.New("pushback: nil network or empty defended set")
	}
	cfg.fillDefaults()
	d := &Deployment{
		Cfg:       cfg,
		sim:       nw.Sim,
		net:       nw,
		aggOf:     map[netsim.NodeID]int{},
		numGroups: len(groups),
		agents:    map[netsim.NodeID]*Agent{},
	}
	for g, ids := range groups {
		if len(ids) == 0 {
			return nil, errors.New("pushback: empty aggregate group")
		}
		for _, id := range ids {
			d.aggOf[id] = g
		}
	}
	return d, nil
}

// DeployRouter activates ACC/Pushback on a router.
func (d *Deployment) DeployRouter(n *netsim.Node) *Agent {
	if a, ok := d.agents[n.ID]; ok {
		return a
	}
	a := newAgent(d, n)
	d.agents[n.ID] = a
	return a
}

// DeployRouters activates the scheme on every listed node.
func (d *Deployment) DeployRouters(ns []*netsim.Node) {
	for _, n := range ns {
		d.DeployRouter(n)
	}
}

// Start begins the periodic ACC control loop.
func (d *Deployment) Start() {
	if d.stop != nil {
		panic("pushback: already started")
	}
	d.stop = d.sim.Every(d.sim.Now()+d.Cfg.Interval, d.Cfg.Interval, func() {
		// Ticks send rate-limit requests upstream; run them in
		// sorted router order so message ordering is reproducible.
		ids := make([]netsim.NodeID, 0, len(d.agents))
		for id := range d.agents {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			d.agents[id].tick()
		}
	})
}

// Stop halts the control loop (installed limiters expire naturally).
func (d *Deployment) Stop() {
	if d.stop != nil {
		d.stop()
		d.stop = nil
	}
}

// Agent returns the router agent for a node, or nil.
func (d *Deployment) Agent(id netsim.NodeID) *Agent { return d.agents[id] }

// ActiveLimiters counts currently installed rate limiters across all
// routers.
func (d *Deployment) ActiveLimiters() int {
	n := 0
	for _, a := range d.agents {
		n += len(a.limiters)
	}
	return n
}
