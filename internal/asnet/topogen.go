package asnet

import (
	"fmt"

	"repro/internal/des"
)

// TopoParams configures random AS-graph generation: a connected
// transit core (random tree plus extra mesh links) with stub ASes
// hanging off random transits — the usual coarse model of inter-domain
// structure.
type TopoParams struct {
	// Transits is the number of transit ASes (core).
	Transits int
	// Stubs is the number of stub ASes (endpoints live here).
	Stubs int
	// ExtraLinks adds this many random transit-transit adjacencies on
	// top of the spanning tree (0 keeps a pure tree).
	ExtraLinks int
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultTopoParams returns a modest internet-like graph: 12 transit
// ASes with some meshing and 30 stubs.
func DefaultTopoParams() TopoParams {
	return TopoParams{Transits: 12, Stubs: 30, ExtraLinks: 6, Seed: 1}
}

// GenerateTopology populates the graph and returns the transit core
// and the stub list. Routes are computed before returning.
func GenerateTopology(g *Graph, p TopoParams) (transits, stubs []*AS, err error) {
	if p.Transits < 1 || p.Stubs < 1 {
		return nil, nil, fmt.Errorf("asnet: need at least one transit and one stub (got %d, %d)", p.Transits, p.Stubs)
	}
	rng := des.NewRNG(p.Seed)
	transits = make([]*AS, p.Transits)
	for i := range transits {
		transits[i] = g.AddAS(true)
		if i > 0 {
			// Random-attachment spanning tree keeps the core connected.
			g.Connect(transits[i], transits[rng.Intn(i)])
		}
	}
	// Extra mesh links (skip duplicates/self).
	for added := 0; added < p.ExtraLinks && p.Transits > 2; {
		a := transits[rng.Intn(p.Transits)]
		b := transits[rng.Intn(p.Transits)]
		if a == b || adjacent(a, b) {
			added++ // bounded attempts: count even when skipped
			continue
		}
		g.Connect(a, b)
		added++
	}
	stubs = make([]*AS, p.Stubs)
	for i := range stubs {
		stubs[i] = g.AddAS(false)
		g.Connect(stubs[i], transits[rng.Intn(p.Transits)])
	}
	g.ComputeRoutes()
	return transits, stubs, nil
}

func adjacent(a, b *AS) bool {
	for _, n := range a.neighbors {
		if n == b {
			return true
		}
	}
	return false
}
