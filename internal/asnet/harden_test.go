package asnet

import (
	"testing"
)

// TestAuthRejectsForgedControl subverts a mid-chain transit AS and
// sprays forged session requests and cancels at the server's home AS.
// With Auth on, every forgery bounces off the MAC, the genuine capture
// still completes, and no forged session survives.
func TestAuthRejectsForgedControl(t *testing.T) {
	sim, g, serverAS, attackerAS := chainTopo(t, 5)
	def := NewDefense(g, 10, Config{Auth: true, AuthKey: []byte("asnet-key")})
	def.DeployAll()
	sched := testSchedule(t, 10, 40)
	srv := NewServer(def, serverAS, sched)
	atk := NewAttacker(def, attackerAS, srv, 50)

	byzAS := g.Path(attackerAS.ID, serverAS.ID)[2]
	adv := NewAdversary(def, byzAS)
	// Forge a teardown storm against every AS on the path, every 100 ms.
	path := g.Path(attackerAS.ID, serverAS.ID)
	for i := 0; i < 200; i++ {
		at := 0.5 + float64(i)*0.1
		sim.At(at, func() {
			for _, a := range path {
				adv.ForgeCancel(a, srv, srv.epoch)
				adv.ForgeOpen(a, srv, 7)
			}
		})
	}
	sim.At(0.5, func() { atk.Start() })
	if err := sim.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	if adv.Injected == 0 {
		t.Fatal("adversary injected nothing")
	}
	if def.Sec.AuthRejects == 0 {
		t.Fatal("no forgery was rejected at the MAC")
	}
	if len(def.Captures()) != 1 {
		t.Fatalf("captures = %d, want 1 (forgery storm must not prevent capture)", len(def.Captures()))
	}
}

// TestForgedCancelKillsUnauthenticatedDefense is the control run: the
// same teardown storm with Auth off tears sessions down as fast as
// they open, and the capture never happens.
func TestForgedCancelKillsUnauthenticatedDefense(t *testing.T) {
	sim, g, serverAS, attackerAS := chainTopo(t, 5)
	def := NewDefense(g, 10, Config{})
	def.DeployAll()
	sched := testSchedule(t, 10, 40)
	srv := NewServer(def, serverAS, sched)
	atk := NewAttacker(def, attackerAS, srv, 50)

	byzAS := g.Path(attackerAS.ID, serverAS.ID)[2]
	adv := NewAdversary(def, byzAS)
	path := g.Path(attackerAS.ID, serverAS.ID)
	for i := 0; i < 4000; i++ {
		at := 0.5 + float64(i)*0.1
		sim.At(at, func() {
			for _, a := range path {
				adv.ForgeCancel(a, srv, srv.epoch)
			}
		})
	}
	sim.At(0.5, func() { atk.Start() })
	if err := sim.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	if def.Sec.AuthRejects != 0 {
		t.Fatal("unauthenticated defense cannot reject anything")
	}
	if len(def.Captures()) != 0 {
		t.Fatalf("captures = %d; expected the forged-cancel storm to defeat the unauthenticated defense", len(def.Captures()))
	}
}

// TestHSMSessionBudget fills an HSM's table with forged far-away
// sessions and checks a near-victim session still gets in, the table
// never exceeds its budget, and further junk is refused.
func TestHSMSessionBudget(t *testing.T) {
	sim, g, serverAS, attackerAS := chainTopo(t, 5)
	def := NewDefense(g, 10, Config{Budget: Budget{Sessions: 2}})
	def.DeployAll()
	sched := testSchedule(t, 10, 40)
	srv := NewServer(def, serverAS, sched)

	// The HSM next to the server; junk servers "live" in the attacker
	// stub, 5 hops away.
	hsm := serverAS.hsm
	junk1 := &Server{Home: attackerAS, Sched: sched}
	junk2 := &Server{Home: attackerAS, Sched: sched}
	junk3 := &Server{Home: attackerAS, Sched: sched}
	hsm.openSession(junk1, 0)
	hsm.openSession(junk2, 0)
	if hsm.ActiveSessions() != 2 {
		t.Fatalf("sessions = %d, want 2", hsm.ActiveSessions())
	}
	// The local server (distance 0) outranks the junk (distance 5).
	hsm.openSession(srv, 0)
	if !hsm.HasSession(srv) {
		t.Fatal("near-victim session was not admitted")
	}
	if hsm.ActiveSessions() != 2 {
		t.Fatalf("table exceeded budget: %d", hsm.ActiveSessions())
	}
	if def.Sec.SessionEvictions != 1 {
		t.Fatalf("SessionEvictions = %d, want 1", def.Sec.SessionEvictions)
	}
	// More junk is refused: it ranks below everything resident.
	hsm.openSession(junk3, 0)
	if hsm.HasSession(junk3) {
		t.Fatal("junk admitted past a stronger table")
	}
	if def.Sec.AdmissionRejects != 1 {
		t.Fatalf("AdmissionRejects = %d, want 1", def.Sec.AdmissionRejects)
	}
	if def.PeakState > def.StateBudget() {
		t.Fatalf("peak state %d exceeded budget %d", def.PeakState, def.StateBudget())
	}
	_ = sim
}

// TestMarkSpoofRejected injects observations whose edge-router mark
// names a non-neighbor AS. Under Auth the spoofed marks are discarded
// and never propagate sessions; without Auth they poison propagation.
func TestMarkSpoofRejected(t *testing.T) {
	sim, g, serverAS, attackerAS := chainTopo(t, 5)
	def := NewDefense(g, 10, Config{Auth: true, AuthKey: []byte("mark-key")})
	def.DeployAll()
	sched := testSchedule(t, 10, 40)
	srv := NewServer(def, serverAS, sched)

	adv := NewAdversary(def, attackerAS)
	// Give the home HSM a genuine session, then spray spoofed marks
	// claiming ingress from the far stub (not a neighbor of serverAS).
	serverAS.hsm.openSession(srv, 0)
	before := serverAS.hsm.Propagations
	adv.SpoofMark(serverAS, srv, attackerAS.ID)
	if err := sim.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if def.Sec.MarkSpoofRejects != 1 {
		t.Fatalf("MarkSpoofRejects = %d, want 1", def.Sec.MarkSpoofRejects)
	}
	if serverAS.hsm.Propagations != before {
		t.Fatal("spoofed mark caused a propagation")
	}
}

// TestReplayedCancelIsEpochBounded captures a genuine cancel and
// replays it after the epoch advances: the tag still verifies for its
// own epoch, but the epoch-match rule refuses to let it tear down the
// newer session.
func TestReplayedCancelIsEpochBounded(t *testing.T) {
	sim, g, serverAS, attackerAS := chainTopo(t, 3)
	def := NewDefense(g, 10, Config{Auth: true, AuthKey: []byte("replay-key")})
	def.DeployAll()
	sched := testSchedule(t, 10, 40)
	srv := NewServer(def, serverAS, sched)
	adv := NewAdversary(def, attackerAS)

	// A genuine open+close cycle in epoch 0 gives the adversary a
	// signed cancel to capture.
	m := &ctrlMsg{op: opClose, server: srv, epoch: 0, origin: serverAS.ID}
	def.sendAuthed(serverAS.ID, serverAS.ID, m, serverAS.hsm.handleCtrl)
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if adv.Captured() == 0 {
		t.Fatal("adversary tap captured nothing")
	}

	// Epoch 3 session is live; the replayed epoch-0 cancel must bounce.
	serverAS.hsm.openSession(srv, 3)
	adv.Replay(serverAS, 0)
	if err := sim.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	if !serverAS.hsm.HasSession(srv) {
		t.Fatal("replayed stale cancel tore down the current session")
	}
	if def.Sec.ReplayRejects == 0 {
		t.Fatal("stale cancel was not counted as a replay reject")
	}
}

// TestLegacyDedupBounded floods a legacy AS with distinct flood IDs
// and checks the dedup set stays capped.
func TestLegacyDedupBounded(t *testing.T) {
	sim, g, serverAS, attackerAS := chainTopo(t, 3)
	def := NewDefense(g, 10, Config{Budget: Budget{DedupEntries: 8}})
	// Middle transit is legacy; ends deploy.
	mid := g.Path(attackerAS.ID, serverAS.ID)[2]
	def.DeployAll()
	leg := def.DeployLegacy(mid)
	sched := testSchedule(t, 10, 40)
	srv := NewServer(def, serverAS, sched)

	for i := int64(1); i <= 50; i++ {
		pb := &piggyback{kind: pbRequest, server: srv, epoch: 0, id: i}
		def.signPiggyback(pb)
		leg.relay(pb, serverAS.ID)
	}
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if leg.seen.Len() != 8 {
		t.Fatalf("dedup set = %d entries, want capped at 8", leg.seen.Len())
	}
	if def.Sec.DedupEvictions != 42 {
		t.Fatalf("DedupEvictions = %d, want 42", def.Sec.DedupEvictions)
	}
}

// TestAsnetWatchdogReseeds wipes every HSM's sessions mid-window while
// the attack continues; the watchdog must detect the stall, re-seed,
// and the capture must still land within the window.
func TestAsnetWatchdogReseeds(t *testing.T) {
	run := func(watchdog bool) (*Defense, *Attacker) {
		sim, g, serverAS, attackerAS := chainTopo(t, 5)
		def := NewDefense(g, 10, Config{Watchdog: watchdog, WatchdogInterval: 0.5})
		def.DeployAll()
		sched := testSchedule(t, 10, 40)
		srv := NewServer(def, serverAS, sched)
		// Slow attack: at 2 pkt/s the hop-by-hop walk takes ~3 s, so the
		// wipe below lands while it is still mid-chain.
		atk := NewAttacker(def, attackerAS, srv, 2)

		ep := sched.NextHoneypotEpoch(0)
		open := sched.StartTime(ep) + sched.Guard
		sim.At(open, func() { atk.Start() })
		// Wipe all session state shortly after propagation begins.
		sim.At(open+1, func() {
			for _, a := range g.ases {
				if a.hsm == nil {
					continue
				}
				for s, sess := range a.hsm.sessions {
					sim.Cancel(sess.Expiry)
					delete(a.hsm.sessions, s)
				}
			}
		})
		if err := sim.RunUntil(sched.StartTime(ep) + sched.M); err != nil {
			t.Fatal(err)
		}
		return def, atk
	}

	def, atk := run(true)
	if def.Sec.WatchdogReseeds == 0 {
		t.Fatal("watchdog never fired despite stalled propagation")
	}
	if !atk.Captured() {
		t.Fatal("no capture with watchdog enabled")
	}
	defOff, atkOff := run(false)
	if atkOff.Captured() {
		t.Fatal("control run captured without the watchdog; scenario is not a stall")
	}
	if defOff.Sec.WatchdogReseeds != 0 {
		t.Fatal("watchdog counter moved while disabled")
	}
}
