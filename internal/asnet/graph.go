// Package asnet models the inter-AS half of honeypot back-propagation
// (Sec. 5.1, Figs. 2–3): autonomous systems with honeypot session
// managers (HSMs), ingress identification of honeypot traffic at AS
// edge routers (by destination-end provider marking or GRE tunneling
// to the HSM), hop-by-hop propagation of honeypot sessions between
// HSMs, piggybacking across non-deploying ASes, and the progressive
// intermediate-AS list. Router-level detail inside each AS is modelled
// by internal/core; here an AS is one hop and intra-AS traceback is a
// configurable delay.
package asnet

import (
	"fmt"

	"repro/internal/des"
)

// ASID identifies an autonomous system.
type ASID int

// AS is one autonomous system in the graph.
type AS struct {
	ID ASID
	// Transit ASes carry third-party traffic; non-transit (stub) ASes
	// host endpoints and terminate back-propagation (Sec. 5.1).
	Transit bool

	graph     *Graph
	neighbors []*AS
	// routes[dst] is the next-hop AS toward dst.
	routes []*AS

	hsm    *HSM    // nil when the AS does not deploy the defense
	legacy *Legacy // piggyback relay when not deploying
}

// Neighbors returns directly connected ASes.
func (a *AS) Neighbors() []*AS { return a.neighbors }

// HSM returns the AS's honeypot session manager, or nil.
func (a *AS) HSM() *HSM { return a.hsm }

// Deployed reports whether the AS runs the defense.
func (a *AS) Deployed() bool { return a.hsm != nil }

func (a *AS) String() string {
	kind := "stub"
	if a.Transit {
		kind = "transit"
	}
	return fmt.Sprintf("AS%d(%s)", a.ID, kind)
}

// Graph is the AS-level topology. Inter-AS links share one control
// latency (the τ of the analysis) and one data-packet forwarding
// latency.
type Graph struct {
	Sim *des.Simulator
	// CtrlDelay is the one-hop latency of HSM-to-HSM messages.
	CtrlDelay float64
	// DataDelay is the one-hop latency of data packets.
	DataDelay float64

	ases []*AS
}

// NewGraph returns an empty AS graph with 20 ms hop latencies.
func NewGraph(sim *des.Simulator) *Graph {
	return &Graph{Sim: sim, CtrlDelay: 0.02, DataDelay: 0.02}
}

// AddAS creates an AS. transit selects transit vs stub.
func (g *Graph) AddAS(transit bool) *AS {
	a := &AS{ID: ASID(len(g.ases)), Transit: transit, graph: g}
	g.ases = append(g.ases, a)
	return a
}

// ASes returns every AS indexed by ID.
func (g *Graph) ASes() []*AS { return g.ases }

// AS returns the AS with the given ID, or nil.
func (g *Graph) AS(id ASID) *AS {
	if id < 0 || int(id) >= len(g.ases) {
		return nil
	}
	return g.ases[id]
}

// Connect joins two ASes with a bidirectional adjacency.
func (g *Graph) Connect(a, b *AS) {
	if a == b {
		panic("asnet: self adjacency")
	}
	for _, n := range a.neighbors {
		if n == b {
			panic("asnet: duplicate adjacency")
		}
	}
	a.neighbors = append(a.neighbors, b)
	b.neighbors = append(b.neighbors, a)
}

// ComputeRoutes fills shortest-path next hops (hop count, BFS).
func (g *Graph) ComputeRoutes() {
	n := len(g.ases)
	for _, a := range g.ases {
		a.routes = make([]*AS, n)
	}
	visited := make([]bool, n)
	queue := make([]*AS, 0, n)
	for _, dst := range g.ases {
		for i := range visited {
			visited[i] = false
		}
		queue = append(queue[:0], dst)
		visited[dst.ID] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range cur.neighbors {
				if visited[nb.ID] {
					continue
				}
				visited[nb.ID] = true
				nb.routes[dst.ID] = cur
				queue = append(queue, nb)
			}
		}
	}
}

// Path returns the AS sequence from a to b inclusive, or nil.
func (g *Graph) Path(a, b ASID) []*AS {
	cur := g.AS(a)
	if cur == nil || g.AS(b) == nil {
		return nil
	}
	path := []*AS{cur}
	for cur.ID != b {
		next := cur.routes[b]
		if next == nil {
			return nil
		}
		cur = next
		path = append(path, cur)
		if len(path) > len(g.ases)+1 {
			return nil
		}
	}
	return path
}

// Hops returns the AS-hop distance between two ASes (-1 if
// unreachable).
func (g *Graph) Hops(a, b ASID) int {
	p := g.Path(a, b)
	if p == nil {
		return -1
	}
	return len(p) - 1
}
