package asnet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/roaming"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// IntraASModel is the seam between the inter-AS plane and the
// router-level phase inside an attack-hosting AS (Sec. 5.2–5.3): once
// an HSM identifies locally originated honeypot traffic, the model
// locates the zombie and shuts it down. FixedDelay is the paper's
// abstraction (a constant IntraASTime); EmbeddedIntraAS runs a real
// core.Defense traceback over a generated router topology on the same
// simulation clock (see DESIGN.md, "Plane unification").
type IntraASModel interface {
	// Horizon returns how long the stub AS must retain the HSM session
	// for the phase to complete — the lease extension of the stub-AS
	// retention rule. Called once, just before Begin.
	Horizon(h *HSM, origin *Attacker) float64
	// Begin starts the intra-AS phase for origin inside h's AS and
	// invokes complete when the zombie has been stopped. complete is
	// at most once; a phase that cannot finish (the session leased
	// out, say) simply never calls it.
	Begin(h *HSM, origin *Attacker, complete func())
}

// FixedDelay is the paper's abstract intra-AS phase: the zombie is
// captured a constant Config.IntraASTime after local origin is
// identified. It is the default model and reproduces the historical
// event stream bit for bit.
type FixedDelay struct{}

// Horizon returns the abstract phase's retention lease: the capture
// delay plus 50% slack.
func (FixedDelay) Horizon(h *HSM, origin *Attacker) float64 {
	return h.d.Cfg.IntraASTime * 1.5
}

// Begin schedules the capture after the fixed delay.
func (FixedDelay) Begin(h *HSM, origin *Attacker, complete func()) {
	h.d.g.Sim.After(h.d.Cfg.IntraASTime, complete)
}

// EmbeddedIntraAS replaces the fixed intra-AS delay with the real
// thing: per attack-hosting AS it lazily instantiates a router-level
// topology (internal/topology tree) and a core.Defense over it, on the
// same des.Simulator clock as the AS graph. Each traceback floods the
// zombie's assigned leaf host toward a collector sink whose honeypot
// window is open, and the router plane's input debugging walks the
// session back to the access router and blocks the zombie's port. The
// observed capture then completes the owning HSM session.
//
// Ownership and clock rules (DESIGN.md, "Plane unification"): the
// embedded networks belong to this model, never to the AS graph; they
// share the simulator but exchange no packets with the outer plane —
// the only coupling is Begin/complete. One EmbeddedIntraAS serves
// exactly one Defense.
type EmbeddedIntraAS struct {
	// Leaves is the number of end hosts per generated intra-AS
	// topology (default 12). Tracebacks assign leaves round-robin, so
	// it bounds how many distinct zombies an AS can host before host
	// slots are reused.
	Leaves int
	// Seed diversifies per-AS topologies; sub-AS i uses a seed derived
	// from (Seed, i), so identical configurations reproduce identical
	// embedded networks.
	Seed int64
	// PacketRate overrides the intra-AS flood rate in packets/s; 0
	// uses the attacker's own Rate, matching the inter-AS flood.
	PacketRate float64
	// Routing selects the route-table representation of the generated
	// intra-AS networks (netsim.RouteMode); the zero value keeps the
	// historical dense tables.
	Routing netsim.RouteMode

	owner *Defense
	subs  map[ASID]*IntraASNet
}

// IntraASNet is one embedded per-AS router network and its defense —
// exported so tests can assert cross-plane state hygiene (StateSize
// returning to baseline after every capture and teardown).
type IntraASNet struct {
	// AS is the owning stub AS.
	AS ASID
	// Tree is the generated router topology.
	Tree *topology.Tree
	// Def is the router-level defense running inside the AS.
	Def *core.Defense

	model     *EmbeddedIntraAS
	sim       *des.Simulator
	sink      *core.ServerDefense
	collector *netsim.Node

	// baseline is Def.StateSize() right after construction; teardown
	// must return to it.
	baseline int

	cur      *traceJob
	queue    []*traceJob
	nextLeaf int
	epochSeq int

	// Tracebacks counts phases started; Aborted counts phases that hit
	// their deadline without a capture (session evicted or leased out).
	Tracebacks int64
	Aborted    int64
}

// traceJob is one queued intra-AS traceback.
type traceJob struct {
	origin   *Attacker
	complete func()
	leaf     *netsim.Node
	flood    *traffic.CBR
	deadline des.Event
}

// floodPacketSize is the wire size of embedded intra-AS attack
// packets.
const floodPacketSize = 100

// maxAccessDepth is the deepest access-router level the generated
// intra-AS trees use (params below: MinDepth 1 + 3 HopDist buckets).
const maxAccessDepth = 3

func (e *EmbeddedIntraAS) params(as ASID) topology.Params {
	leaves := e.Leaves
	if leaves <= 0 {
		leaves = 12
	}
	return topology.Params{
		Leaves:      leaves,
		Servers:     1,
		Bottleneck:  topology.LinkClass{Bandwidth: 100e6, Delay: 0.002},
		ServerLink:  topology.LinkClass{Bandwidth: 1e9, Delay: 0.0005},
		CoreLink:    topology.LinkClass{Bandwidth: 200e6, Delay: 0.002},
		LeafLink:    topology.LinkClass{Bandwidth: 100e6, Delay: 0.002},
		HopDist:     []float64{0.25, 0.45, 0.30},
		MinDepth:    1,
		Reuse:       0.6,
		MaxChildren: 4,
		Routing:     e.Routing,
		Seed:        e.Seed*1_000_003 + int64(as) + 1,
	}
}

// rate returns the intra-AS flood rate for origin in packets/s.
func (e *EmbeddedIntraAS) rate(origin *Attacker) float64 {
	if e.PacketRate > 0 {
		return e.PacketRate
	}
	if origin != nil && origin.Rate > 0 {
		return origin.Rate
	}
	return 10
}

// estimate is the expected wall-clock of one traceback at the given
// flood rate: the capture-time model of Sec. 7 specialised to the
// embedded tree — every back-propagated hop needs the next attack
// packet (1/r) plus the control hop (τ ≈ link delay), across at most
// maxAccessDepth+3 router hops (access path + root + gateway +
// collector).
func (e *EmbeddedIntraAS) estimate(rate float64) float64 {
	hops := float64(maxAccessDepth + 3)
	const tau = 0.01
	return (hops+1)*(1/rate) + hops*tau
}

// Horizon covers the queue ahead of this traceback plus twice the
// single-traceback estimate — generous, because an expired session
// mid-traceback strands the zombie until the next epoch.
func (e *EmbeddedIntraAS) Horizon(h *HSM, origin *Attacker) float64 {
	ahead := 1
	if s, ok := e.subs[h.as.ID]; ok {
		ahead += len(s.queue)
		if s.cur != nil {
			ahead++
		}
	}
	return float64(ahead)*2*e.estimate(e.rate(origin)) + 0.5
}

// Begin enqueues (and, when the embedded network is idle, immediately
// starts) the traceback for origin.
func (e *EmbeddedIntraAS) Begin(h *HSM, origin *Attacker, complete func()) {
	sub := e.sub(h)
	job := &traceJob{origin: origin, complete: complete}
	if sub.cur != nil {
		sub.queue = append(sub.queue, job)
		return
	}
	sub.start(job)
}

// Subs returns the instantiated per-AS networks in AS order.
func (e *EmbeddedIntraAS) Subs() []*IntraASNet {
	out := make([]*IntraASNet, 0, len(e.subs))
	for as := ASID(0); len(out) < len(e.subs); as++ {
		if s, ok := e.subs[as]; ok {
			out = append(out, s)
		}
	}
	return out
}

func (e *EmbeddedIntraAS) sub(h *HSM) *IntraASNet {
	if e.owner == nil {
		e.owner = h.d
	} else if e.owner != h.d {
		panic("asnet: one EmbeddedIntraAS cannot serve two Defenses")
	}
	if e.subs == nil {
		e.subs = map[ASID]*IntraASNet{}
	}
	s, ok := e.subs[h.as.ID]
	if !ok {
		s = e.build(h)
		e.subs[h.as.ID] = s
	}
	return s
}

// build instantiates the embedded network for h's AS: tree topology,
// a single collector server behind the gateway, a dummy roaming pool
// holding just the collector (never started — the HSM session, not a
// schedule, drives the sink's windows), and a fully deployed router
// defense.
func (e *EmbeddedIntraAS) build(h *HSM) *IntraASNet {
	sim := h.d.g.Sim
	tr := topology.NewTree(sim, e.params(h.as.ID))
	collector := tr.Servers[0]
	life := 4 * e.estimate(e.rate(nil))
	if cfgLife := h.d.Cfg.SessionLifetime; cfgLife > life {
		life = cfgLife
	}
	pool, err := roaming.NewPool(sim, []*netsim.Node{collector}, roaming.Config{
		N: 1, K: 1,
		EpochLen:  life,
		Epochs:    1,
		ChainSeed: []byte(fmt.Sprintf("intra-as-%d", h.as.ID)),
	})
	if err != nil {
		panic(err)
	}
	def, err := core.New(tr.Net, pool, tr.IsHost, core.Config{
		SessionLifetime: life,
	})
	if err != nil {
		panic(err)
	}
	for _, r := range tr.Routers {
		def.DeployRouter(r)
	}
	s := &IntraASNet{
		AS:        h.as.ID,
		Tree:      tr,
		Def:       def,
		model:     e,
		sim:       sim,
		collector: collector,
	}
	s.sink = def.AttachSink(collector)
	def.OnCapture = s.onCapture
	s.baseline = def.StateSize()
	return s
}

// start launches one traceback: assign the zombie a leaf host, open
// the sink's honeypot window, and start the leaf's flood toward the
// collector. The router plane does the rest.
func (s *IntraASNet) start(job *traceJob) {
	s.cur = job
	s.Tracebacks++
	job.leaf = s.Tree.Leaves[s.nextLeaf%len(s.Tree.Leaves)]
	s.nextLeaf++
	// Reusing a host slot whose switch port is still blocked from an
	// earlier capture models host churn behind the access router: the
	// filter is withdrawn when the port is re-provisioned.
	if pt := s.Tree.AccessRouter(job.leaf).PortTo(job.leaf); pt != nil {
		pt.BlockedIngress = false
	}
	s.epochSeq++
	s.sink.OpenWindow(s.epochSeq)
	rate := s.model.rate(job.origin)
	job.flood = &traffic.CBR{
		Node: job.leaf,
		Rate: rate * floodPacketSize * 8,
		Size: floodPacketSize,
		Dest: func() netsim.NodeID { return s.collector.ID },
	}
	job.flood.Start()
	// Safety deadline: a traceback stranded by lease expiry or
	// eviction must not wedge the queue. No capture is recorded — the
	// zombie escapes until the next epoch re-seeds the session.
	job.deadline = s.sim.AfterNamed(2*s.model.estimate(rate)+0.5, "intra-as-deadline", func() {
		if s.cur != job {
			return
		}
		s.Aborted++
		s.teardown(job)
		s.next()
	})
}

// onCapture observes the embedded defense blocking an access port. A
// capture of the current job's leaf completes the traceback and
// reports back to the owning HSM session.
func (s *IntraASNet) onCapture(c core.Capture) {
	job := s.cur
	if job == nil || c.Attacker != job.leaf.ID {
		return
	}
	s.sim.Cancel(job.deadline)
	s.teardown(job)
	job.complete()
	s.next()
}

// teardown stops the flood and closes the sink window, cancelling the
// session tree back down the routers — embedded state must return to
// baseline (the cross-plane leak invariant).
func (s *IntraASNet) teardown(job *traceJob) {
	job.flood.Stop()
	s.sink.CloseWindow()
	s.cur = nil
}

func (s *IntraASNet) next() {
	if s.cur != nil || len(s.queue) == 0 {
		return
	}
	job := s.queue[0]
	s.queue = s.queue[1:]
	s.start(job)
}

// Baseline returns the construction-time StateSize of the embedded
// defense — the teardown target.
func (s *IntraASNet) Baseline() int { return s.baseline }

// Idle reports whether no traceback is running or queued.
func (s *IntraASNet) Idle() bool { return s.cur == nil && len(s.queue) == 0 }
