package asnet

import (
	"encoding/binary"

	"repro/internal/hbp"
)

// Budget caps the inter-AS defense state that attacker-controlled
// packets can grow — the shared hbp.Budget (Sessions caps each HSM's
// session table, DedupEntries each legacy AS's piggyback dedup set).
// The zero Budget falls back to defaults, so HSM state is always
// bounded (see DESIGN.md, "Threat model & graceful degradation").
type Budget = hbp.Budget

// asnetChainLabel domain-separates the inter-AS control chain from
// both the service chain and the intra-AS control chain.
const asnetChainLabel = "hbp-asnet-ctrl:"

// ctrlOp enumerates HSM control operations. The thunk-based control
// channel of the unhardened model carries these as typed, taggable
// messages once Auth is on — a forger has to produce a frame that
// verifies, not a Go closure.
type ctrlOp int

const (
	opOpen ctrlOp = iota
	opClose
	opReport
)

func (o ctrlOp) String() string {
	switch o {
	case opOpen:
		return "open"
	case opClose:
		return "close"
	default:
		return "report"
	}
}

// ctrlMsg is one authenticated inter-AS control message (the paper's
// HonSesReq / HonSesCancel plus the progressive report).
type ctrlMsg struct {
	op     ctrlOp
	server *Server
	epoch  int
	origin ASID
	sentAt float64
	tag    []byte
}

// encode is the canonical byte string the per-epoch MAC covers.
func (m *ctrlMsg) encode() []byte {
	buf := make([]byte, 6*8)
	fields := []int64{
		int64(m.op),
		int64(m.server.Home.ID),
		int64(serverMember(m.server)),
		int64(m.epoch),
		int64(m.origin),
		int64(m.sentAt * 1e3),
	}
	for i, v := range fields {
		binary.BigEndian.PutUint64(buf[i*8:], uint64(v))
	}
	return buf
}

func serverMember(s *Server) int {
	if s.Sched == nil {
		return 0
	}
	return s.Sched.Member
}

// ensureChain builds (or extends) the control chain to cover the given
// epoch count. Called at server registration, when the schedule length
// is known.
func (d *Defense) ensureChain(epochs int) {
	if !d.Cfg.Auth {
		return
	}
	if err := d.auth.Ensure(epochs); err != nil {
		panic(err) // epochs<=0 is a construction-order bug, not runtime input
	}
}

// signCtrl attaches the per-epoch MAC.
func (d *Defense) signCtrl(m *ctrlMsg) {
	if !d.Cfg.Auth {
		return
	}
	if tag := d.auth.Tag(m.epoch, m.encode()); tag != nil {
		m.tag = tag
	}
}

// authOK verifies an incoming control message, counting rejects.
func (d *Defense) authOK(m *ctrlMsg) bool {
	if !d.Cfg.Auth {
		return true
	}
	if d.auth.Check(m.epoch, m.encode(), m.tag) {
		return true
	}
	d.Sec.AuthRejects++
	return false
}

// signPiggyback / piggybackOK authenticate flooded announcements.
// Legacy ASes relay them unverified (they run no defense), but the
// deploying AS that terminates the flood checks the tag before
// touching session state.
func (d *Defense) signPiggyback(p *piggyback) {
	if !d.Cfg.Auth {
		return
	}
	if tag := d.auth.Tag(p.epoch, p.encode()); tag != nil {
		p.tag = tag
	}
}

func (d *Defense) piggybackOK(p *piggyback) bool {
	if !d.Cfg.Auth {
		return true
	}
	if d.auth.Check(p.epoch, p.encode(), p.tag) {
		return true
	}
	d.Sec.AuthRejects++
	return false
}

// sendAuthed signs and delivers a typed control message to the
// receiver-side dispatch deliver.
func (d *Defense) sendAuthed(from, to ASID, m *ctrlMsg, deliver func(*ctrlMsg)) {
	d.signCtrl(m)
	if d.ctrlTap != nil {
		d.ctrlTap(m, to)
	}
	d.sendCtrl(from, to, func() { deliver(m) })
}

// handleCtrl is the HSM's authenticated control entry point.
func (h *HSM) handleCtrl(m *ctrlMsg) {
	if !h.d.authOK(m) {
		return
	}
	switch m.op {
	case opOpen:
		h.openSession(m.server, m.epoch)
	case opClose:
		// A cancel is only valid for the epoch it names: a replayed
		// cancel from an earlier epoch (its tag still verifies for
		// *that* epoch) must not tear down the current session.
		if h.d.Cfg.Auth {
			if sess, ok := h.sessions[m.server]; ok && sess.Epoch != m.epoch {
				h.d.Sec.ReplayRejects++
				return
			}
		}
		h.closeSession(m.server, true)
	}
}

// handleCtrl is the server's authenticated report entry point.
func (s *Server) handleCtrl(m *ctrlMsg) {
	if !s.d.authOK(m) {
		return
	}
	if m.op != opReport {
		return
	}
	s.handleReport(m.origin, m.epoch, m.sentAt)
}

// weakerHSMSession is the eviction order (the same shared hbp order as
// core.weakerSession: farther from the victim is weaker, unreachable
// counts as infinitely far, then fewer observed packets), made total
// by breaking the remaining ties on the higher (home AS, member)
// identity. Deterministic regardless of map iteration.
func weakerHSMSession(a, b *hsmSession) bool {
	if w, tied := hbp.Weaker(&a.SessionCore, &b.SessionCore); !tied {
		return w
	}
	if a.server.Home.ID != b.server.Home.ID {
		return a.server.Home.ID > b.server.Home.ID
	}
	return serverMember(a.server) > serverMember(b.server)
}

// evictWeaker sheds the weakest resident session iff the incoming one
// (at distance dist, for server s) ranks strictly above it. Shedding
// is local — no cancels propagate — so budget pressure cannot be
// turned into a teardown amplifier.
func (h *HSM) evictWeaker(dist int, s *Server) bool {
	incoming := &hsmSession{SessionCore: hbp.SessionCore{Dist: dist}, server: s}
	evicted, ok := hbp.EvictWeakest(h.sessions, weakerHSMSession, incoming,
		func(sess *hsmSession) *Server { return sess.server })
	if !ok {
		return false
	}
	evicted.Drop(h.d.g.Sim)
	h.d.Sec.SessionEvictions++
	return true
}

// hasNeighbor reports whether the AS with the given ID is a direct
// neighbor — the validity test for an edge-router mark.
func (a *AS) hasNeighbor(id ASID) bool {
	for _, nb := range a.neighbors {
		if nb.ID == id {
			return true
		}
	}
	return false
}

// StateSize is the total live defense state across every HSM and
// legacy relay.
func (d *Defense) StateSize() int {
	n := 0
	for _, a := range d.g.ases {
		if a.hsm != nil {
			n += len(a.hsm.sessions)
		}
		if a.legacy != nil {
			n += a.legacy.seen.Len()
		}
	}
	return n
}

// StateBudget is the configured ceiling on StateSize for the current
// deployment.
func (d *Defense) StateBudget() int {
	n := 0
	for _, a := range d.g.ases {
		if a.hsm != nil {
			n += d.Cfg.Budget.Sessions
		}
		if a.legacy != nil {
			n += d.Cfg.Budget.DedupEntries
		}
	}
	return n
}

// noteState updates the high-water mark after a state-growing
// mutation.
func (d *Defense) noteState() {
	d.StateMeter.Note(d.StateSize())
}

// Adversary is a subverted AS attacking the inter-AS defense without
// key material: it forges session requests and cancels, spoofs
// edge-router marks, and replays captured control frames. Its success
// rate is the measure of the authentication layer.
type Adversary struct {
	d    *Defense
	From *AS

	ring []*ctrlMsg

	// Injected counts hostile frames put on the control channel.
	Injected int64
}

// NewAdversary subverts the given AS. Captured genuine control frames
// (for replay) accumulate from the moment of subversion.
func NewAdversary(d *Defense, from *AS) *Adversary {
	adv := &Adversary{d: d, From: from}
	prev := d.ctrlTap
	d.ctrlTap = func(m *ctrlMsg, to ASID) {
		if prev != nil {
			prev(m, to)
		}
		// The subverted AS overhears control traffic it originates,
		// receives or relays; a global tap overapproximates that —
		// the strongest replay adversary the model can host.
		if len(adv.ring) < 64 {
			adv.ring = append(adv.ring, m)
		}
	}
	return adv
}

// ForgeOpen injects a fabricated HonSesReq (garbage tag) for server s
// at the target AS.
func (adv *Adversary) ForgeOpen(target *AS, s *Server, epoch int) {
	adv.forge(target, s, epoch, opOpen)
}

// ForgeCancel injects a fabricated HonSesCancel (garbage tag) for
// server s at the target AS.
func (adv *Adversary) ForgeCancel(target *AS, s *Server, epoch int) {
	adv.forge(target, s, epoch, opClose)
}

func (adv *Adversary) forge(target *AS, s *Server, epoch int, op ctrlOp) {
	if target.hsm == nil {
		return
	}
	adv.Injected++
	m := &ctrlMsg{op: op, server: s, epoch: epoch, origin: adv.From.ID,
		sentAt: adv.d.g.Sim.Now(), tag: []byte("forged-tag-no-key-material")}
	hsm := target.hsm
	adv.d.sendCtrl(adv.From.ID, target.ID, func() { hsm.handleCtrl(m) })
}

// SpoofMark injects an attack observation at the target AS whose
// edge-router mark claims the (arbitrary) ingress AS `claimed` — the
// spoofed-mark attack against destination-end marking.
func (adv *Adversary) SpoofMark(target *AS, s *Server, claimed ASID) {
	if target.hsm == nil {
		return
	}
	adv.Injected++
	target.hsm.observe(s, claimed, nil)
}

// Replay re-injects the i-th captured genuine control frame (tag and
// all) at the target AS. Returns false if nothing has been captured
// yet.
func (adv *Adversary) Replay(target *AS, i int) bool {
	if len(adv.ring) == 0 || target.hsm == nil {
		return false
	}
	adv.Injected++
	m := adv.ring[i%len(adv.ring)]
	hsm := target.hsm
	adv.d.sendCtrl(adv.From.ID, target.ID, func() { hsm.handleCtrl(m) })
	return true
}

// Captured returns how many genuine control frames the adversary has
// overheard.
func (adv *Adversary) Captured() int { return len(adv.ring) }
