package asnet

import (
	"fmt"
	"sort"

	"repro/internal/hashchain"
	"repro/internal/hbp"
)

// Schedule is the roaming-honeypots epoch schedule as seen by one
// server of the pool: epoch length m, guard slack, and the hash-chain
// derived active sets (Sec. 4) for pool parameters N and K.
type Schedule struct {
	// M is the epoch length in seconds; Guard shrinks honeypot
	// windows at both ends.
	M, Guard float64
	// N, K are the pool size and concurrent active count.
	N, K int
	// Member is this server's index within the pool.
	Member int

	chain  *hashchain.Chain
	epochs int
}

// NewSchedule derives a schedule from a chain seed.
func NewSchedule(seed []byte, n, k, member int, m, guard float64, epochs int) (*Schedule, error) {
	if member < 0 || member >= n {
		return nil, fmt.Errorf("asnet: member %d outside pool of %d", member, n)
	}
	if k < 1 || k >= n {
		return nil, fmt.Errorf("asnet: k=%d must be in [1,%d)", k, n)
	}
	if m <= 0 || guard < 0 || guard*2 >= m {
		return nil, fmt.Errorf("asnet: bad m=%v guard=%v", m, guard)
	}
	chain, err := hashchain.Generate(seed, epochs)
	if err != nil {
		return nil, err
	}
	return &Schedule{M: m, Guard: guard, N: n, K: k, Member: member, chain: chain, epochs: epochs}, nil
}

// Epochs returns the schedule length.
func (s *Schedule) Epochs() int { return s.epochs }

// HoneypotAt reports whether the member acts as a honeypot in the
// epoch.
func (s *Schedule) HoneypotAt(epoch int) bool {
	key, err := s.chain.Key(epoch)
	if err != nil {
		return false
	}
	for _, idx := range hashchain.ActiveSet(key, s.N, s.K) {
		if idx == s.Member {
			return false
		}
	}
	return true
}

// NextHoneypotEpoch returns the first honeypot epoch >= from, or -1.
func (s *Schedule) NextHoneypotEpoch(from int) int {
	for e := from; e < s.epochs; e++ {
		if s.HoneypotAt(e) {
			return e
		}
	}
	return -1
}

// StartTime returns the epoch's start time (schedule starts at 0).
func (s *Schedule) StartTime(epoch int) float64 { return float64(epoch) * s.M }

// HoneypotProbability returns p = (N-K)/N.
func (s *Schedule) HoneypotProbability() float64 { return float64(s.N-s.K) / float64(s.N) }

// Server is the defended server: it follows its schedule, counts
// honeypot traffic, drives inter-AS session setup/teardown, and runs
// the progressive intermediate-AS list.
type Server struct {
	Home  *AS
	Sched *Schedule

	d *Defense

	windowOpen bool
	epoch      int
	hpCount    int
	requested  bool

	intermediates map[ASID]*asIntermediate

	// wd is the shared stall detector (internal/hbp): progress observed
	// at the last check plus the pending tick.
	wd hbp.Watchdog

	// Stats
	RequestsSent       int64
	CancelsSent        int64
	DirectRequestsSent int64
	ReportsReceived    int64
	WatchdogReseeds    int64
}

type asIntermediate struct {
	id            ASID
	tdist         float64
	consecutive   int
	armedEpoch    int
	reportedEpoch int
	armPending    bool
}

// NewServer creates the defended server in its home AS and starts its
// window timers (the schedule begins at simulation time 0).
func NewServer(d *Defense, home *AS, sched *Schedule) *Server {
	s := &Server{Home: home, Sched: sched, d: d, epoch: -1, intermediates: map[ASID]*asIntermediate{},
		wd: hbp.Watchdog{Interval: d.Cfg.WatchdogInterval, EventName: "asnet-watchdog"}}
	d.servers = append(d.servers, s)
	d.ensureChain(sched.Epochs())
	sim := d.g.Sim
	for e := 0; e < sched.Epochs(); e++ {
		if !sched.HoneypotAt(e) {
			continue
		}
		e := e
		sim.AtNamed(sched.StartTime(e)+sched.Guard, "asnet-window-open", func() { s.windowOpenAt(e) })
		sim.AtNamed(sched.StartTime(e)+sched.M-sched.Guard, "asnet-window-close", func() { s.windowCloseAt(e) })
	}
	return s
}

// Intermediates returns the current intermediate-AS list size.
func (s *Server) Intermediates() int { return len(s.intermediates) }

func (s *Server) windowOpenAt(epoch int) {
	s.windowOpen = true
	s.epoch = epoch
	s.hpCount = 0
	s.requested = false
	if s.d.Cfg.Watchdog {
		s.wd.Arm(s.d.g.Sim, 0, s.d.CaptureCount(), s.watchdogTick)
	}
	// Rule 1 stale sweep: armed earlier, never reported -> the AS
	// propagated upstream (or the report was lost); drop it.
	for id, e := range s.intermediates {
		if e.armedEpoch >= 0 && e.armedEpoch < epoch && e.reportedEpoch < e.armedEpoch {
			delete(s.intermediates, id)
		}
	}
}

func (s *Server) windowCloseAt(epoch int) {
	s.windowOpen = false
	s.wd.Disarm(s.d.g.Sim)
	if s.requested && s.Home.Deployed() {
		hsm := s.Home.hsm
		s.CancelsSent++
		cm := &ctrlMsg{op: opClose, server: s, epoch: epoch, origin: s.Home.ID}
		s.d.sendAuthed(s.Home.ID, s.Home.ID, cm, hsm.handleCtrl)
	}
	// Direct cancels go out in sorted AS order so authentication
	// sequence numbers stay reproducible (watchdogTick re-seeds the
	// same way; core's windowClose sorts router IDs identically).
	ids := make([]ASID, 0, len(s.intermediates))
	for id, e := range s.intermediates {
		if e.armedEpoch == epoch {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		target := s.d.g.AS(id)
		if target == nil || !target.Deployed() {
			continue
		}
		hsm := target.hsm
		s.CancelsSent++
		cm := &ctrlMsg{op: opClose, server: s, epoch: epoch, origin: s.Home.ID}
		s.d.sendAuthed(s.Home.ID, id, cm, hsm.handleCtrl)
	}
}

// watchdogTick checks once per WatchdogInterval whether propagation
// has stalled: the honeypot keeps drawing attack traffic yet no new
// capture landed since the last check (budget pressure or a fault
// evicted sessions mid-tree). The cure is to re-seed the tree — a
// fresh request to the home HSM plus fresh direct requests to every
// intermediate already armed for this epoch.
func (s *Server) watchdogTick() {
	if !s.windowOpen {
		return
	}
	d := s.d
	if s.wd.Stalled(s.requested, s.hpCount, d.CaptureCount()) {
		d.Sec.WatchdogReseeds++
		s.WatchdogReseeds++
		if s.Home.Deployed() {
			hsm := s.Home.hsm
			m := &ctrlMsg{op: opOpen, server: s, epoch: s.epoch, origin: s.Home.ID}
			d.sendAuthed(s.Home.ID, s.Home.ID, m, hsm.handleCtrl)
			s.RequestsSent++
		}
		// Re-arm the progressive frontier, sorted for determinism.
		ids := make([]ASID, 0, len(s.intermediates))
		for id, e := range s.intermediates {
			if e.armedEpoch == s.epoch {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			target := d.g.AS(id)
			if target == nil || !target.Deployed() {
				continue
			}
			hsm := target.hsm
			m := &ctrlMsg{op: opOpen, server: s, epoch: s.epoch, origin: s.Home.ID}
			d.sendAuthed(s.Home.ID, id, m, hsm.handleCtrl)
			s.DirectRequestsSent++
		}
	}
	s.wd.Observe(s.hpCount, d.CaptureCount())
	s.wd.Rearm(d.g.Sim, s.watchdogTick)
}

// receive handles one attack packet arriving at the server while it
// may be acting as a honeypot.
func (s *Server) receive() {
	if !s.windowOpen {
		return
	}
	s.hpCount++
	if s.hpCount >= s.d.Cfg.ActivationThreshold && !s.requested && s.Home.Deployed() {
		s.requested = true
		hsm := s.Home.hsm
		s.RequestsSent++
		m := &ctrlMsg{op: opOpen, server: s, epoch: s.epoch, origin: s.Home.ID}
		s.d.sendAuthed(s.Home.ID, s.Home.ID, m, hsm.handleCtrl)
	}
}

// handleReport processes a progressive frontier report (Sec. 6).
func (s *Server) handleReport(origin ASID, epoch int, sentAt float64) {
	if !s.d.Cfg.Progressive {
		return
	}
	s.ReportsReceived++
	now := s.d.g.Sim.Now()
	e, ok := s.intermediates[origin]
	if !ok {
		e = &asIntermediate{id: origin, armedEpoch: -1, reportedEpoch: -1}
		s.intermediates[origin] = e
	}
	if epoch > e.reportedEpoch {
		e.consecutive++
		e.reportedEpoch = epoch
	}
	e.tdist = now - sentAt
	if e.tdist < 0 {
		e.tdist = 0
	}
	if e.consecutive >= s.d.Cfg.Rho {
		delete(s.intermediates, origin)
		return
	}
	s.scheduleArm(e, epoch)
}

func (s *Server) scheduleArm(e *asIntermediate, afterEpoch int) {
	if e.armPending {
		return
	}
	next := s.Sched.NextHoneypotEpoch(afterEpoch + 1)
	if next < 0 {
		return
	}
	open := s.Sched.StartTime(next) + s.Sched.Guard
	at := open - e.tdist - s.d.Cfg.Tau
	sim := s.d.g.Sim
	if at < sim.Now() {
		at = sim.Now()
	}
	e.armPending = true
	sim.AtNamed(at, "asnet-progressive-arm", func() {
		e.armPending = false
		if s.intermediates[e.id] != e {
			return
		}
		target := s.d.g.AS(e.id)
		if target == nil || !target.Deployed() {
			return
		}
		hsm := target.hsm
		s.DirectRequestsSent++
		m := &ctrlMsg{op: opOpen, server: s, epoch: next, origin: s.Home.ID}
		s.d.sendAuthed(s.Home.ID, e.id, m, hsm.handleCtrl)
		e.armedEpoch = next
	})
}

// Attacker is a zombie in a stub AS flooding the server. Rate is in
// packets/s; on-off bursting optional.
type Attacker struct {
	AS     *AS
	Server *Server
	// Rate is packets per second during on-time.
	Rate float64
	// Ton/Toff, when Ton > 0, select an on-off pattern.
	Ton, Toff float64

	d        *Defense
	path     []*AS
	captured bool
	running  bool
	Sent     int64
}

// NewAttacker creates a zombie in the given AS.
func NewAttacker(d *Defense, home *AS, target *Server, rate float64) *Attacker {
	a := &Attacker{AS: home, Server: target, Rate: rate, d: d}
	a.path = d.g.Path(home.ID, target.Home.ID)
	if a.path == nil {
		panic("asnet: attacker cannot reach server")
	}
	return a
}

// Captured reports whether intra-AS traceback shut the zombie down.
func (a *Attacker) Captured() bool { return a.captured }

// Start begins the flood at the current simulation time.
func (a *Attacker) Start() {
	if a.running {
		return
	}
	a.running = true
	sim := a.d.g.Sim
	interval := 1 / a.Rate
	cycle := a.Ton + a.Toff
	var tick func()
	tick = func() {
		if !a.running || a.captured {
			return
		}
		// On-off gating by simulation-clock phase (bursts align to
		// multiples of Ton+Toff on the global clock).
		if a.Ton > 0 && cycle > 0 {
			phase := sim.Now() - float64(int(sim.Now()/cycle))*cycle
			if phase >= a.Ton {
				// Sleep to the next burst start.
				sim.After(cycle-phase, tick)
				return
			}
		}
		a.emit()
		sim.After(interval, tick)
	}
	sim.After(0, tick)
}

// Stop halts the flood.
func (a *Attacker) Stop() { a.running = false }

// emit launches one packet along the AS path, letting each AS's HSM
// observe it with the correct ingress neighbor.
func (a *Attacker) emit() {
	a.Sent++
	sim := a.d.g.Sim
	// Origin AS observes a locally originated packet.
	if a.AS.Deployed() {
		a.AS.hsm.observe(a.Server, -1, a)
	}
	var step func(i int)
	step = func(i int) {
		if i >= len(a.path) {
			a.Server.receive()
			return
		}
		cur := a.path[i]
		from := a.path[i-1].ID
		if cur.Deployed() {
			cur.hsm.observe(a.Server, from, a)
		}
		sim.After(a.d.g.DataDelay, func() { step(i + 1) })
	}
	if len(a.path) == 1 {
		// Attacker and server share the AS; delivery is local.
		sim.After(a.d.g.DataDelay, func() { a.Server.receive() })
		return
	}
	sim.After(a.d.g.DataDelay, func() { step(1) })
}
