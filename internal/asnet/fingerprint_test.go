package asnet

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/des"
)

// fullTopoFingerprint runs one fixed-seed scenario on a generated
// full topology (meshed transit core, stubs, several dispersed
// attackers, progressive mode) and folds everything observable into a
// string: the exact capture sequence and every defense counter. The
// engine is injected so the hosted-sharded variant can drive the same
// model: sim is where the model lives, runUntil drives the run.
func fullTopoFingerprint(t *testing.T, sim *des.Simulator, runUntil func(float64) error) string {
	t.Helper()
	g := NewGraph(sim)
	_, stubs, err := GenerateTopology(g, TopoParams{Transits: 10, Stubs: 16, ExtraLinks: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	def := NewDefense(g, 10, Config{Progressive: true, Rho: 8})
	def.DeployAll()
	sched := testSchedule(t, 10, 120)
	srv := NewServer(def, stubs[0], sched)

	fp := ""
	def.OnCapture = func(c Capture) {
		fp += fmt.Sprintf("cap as=%d t=%.9f;", c.AS, c.Time)
	}
	// Dispersed attackers with staggered starts and distinct rates, so
	// sessions overlap and the control plane carries real concurrency.
	for i, stub := range stubs[1:6] {
		atk := NewAttacker(def, stub, srv, 5+float64(3*i))
		start := 0.5 + 0.7*float64(i)
		sim.At(start, func() { atk.Start() })
	}
	if err := runUntil(1200); err != nil {
		t.Fatal(err)
	}
	fp += fmt.Sprintf("msg=%d ingress=%d lease=%d peak=%d reports=%d sec=%+v",
		def.MsgSent, def.IngressLookups, def.LeaseExpiries, def.PeakState,
		srv.ReportsReceived, def.Sec)
	return fp
}

// TestFullTopologyFingerprint pins determinism on the as-level layer
// the way the tree experiments already do: two fixed-seed runs over a
// generated full topology (not just a chain) must agree bit-for-bit on
// the capture sequence and every counter. This is the regression net
// under the sorted-iteration fixes in closeSession/windowCloseAt — a
// reintroduced map-order leak shows up here as a flaky diff.
func TestFullTopologyFingerprint(t *testing.T) {
	sim1, sim2 := des.New(), des.New()
	a := fullTopoFingerprint(t, sim1, sim1.RunUntil)
	b := fullTopoFingerprint(t, sim2, sim2.RunUntil)
	if a != b {
		t.Fatalf("same seed produced different runs:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "cap as=") {
		t.Fatalf("scenario captured nothing; fingerprint pins too little: %s", a)
	}
}

// TestFullTopologyFingerprintHosted pins the hosted-sharded seam: the
// same model built on shard 0 of a multi-shard conservative engine
// (idle peer shards, windowed driver loop) must reproduce the
// sequential engine's fingerprint bit for bit.
func TestFullTopologyFingerprintHosted(t *testing.T) {
	seq := des.New()
	ref := fullTopoFingerprint(t, seq, seq.RunUntil)
	for _, shards := range []int{2, 8} {
		ss := des.NewSharded(7, shards)
		if got := fullTopoFingerprint(t, ss.Shard(0), ss.RunUntil); got != ref {
			t.Fatalf("hosted on %d shards diverged from the sequential engine:\n%s\nvs\n%s", shards, ref, got)
		}
	}
}
