package asnet

import (
	"testing"

	"repro/internal/des"
)

// chainTopo builds a chain of transit ASes with a stub at each end:
// stub0(server) - t1 - t2 - ... - tN - stubA(attacker).
func chainTopo(t testing.TB, transits int) (*des.Simulator, *Graph, *AS, *AS) {
	t.Helper()
	sim := des.New()
	g := NewGraph(sim)
	serverAS := g.AddAS(false)
	prev := serverAS
	for i := 0; i < transits; i++ {
		tr := g.AddAS(true)
		g.Connect(prev, tr)
		prev = tr
	}
	attackerAS := g.AddAS(false)
	g.Connect(prev, attackerAS)
	g.ComputeRoutes()
	return sim, g, serverAS, attackerAS
}

func testSchedule(t testing.TB, m float64, epochs int) *Schedule {
	t.Helper()
	s, err := NewSchedule([]byte("asnet-test"), 2, 1, 0, m, 0.2, epochs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGraphRouting(t *testing.T) {
	_, g, serverAS, attackerAS := chainTopo(t, 4)
	if got := g.Hops(attackerAS.ID, serverAS.ID); got != 5 {
		t.Fatalf("hops = %d, want 5", got)
	}
	path := g.Path(attackerAS.ID, serverAS.ID)
	if len(path) != 6 || path[0] != attackerAS || path[5] != serverAS {
		t.Fatalf("bad path %v", path)
	}
	if g.Hops(serverAS.ID, serverAS.ID) != 0 {
		t.Fatal("self distance not 0")
	}
}

func TestGraphValidation(t *testing.T) {
	sim := des.New()
	g := NewGraph(sim)
	a := g.AddAS(true)
	b := g.AddAS(true)
	g.Connect(a, b)
	for i, f := range []func(){
		func() { g.Connect(a, a) },
		func() { g.Connect(a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestScheduleProperties(t *testing.T) {
	s := testSchedule(t, 10, 100)
	if s.HoneypotProbability() != 0.5 {
		t.Fatalf("p = %v", s.HoneypotProbability())
	}
	honeypots := 0
	for e := 0; e < 100; e++ {
		if s.HoneypotAt(e) {
			honeypots++
		}
	}
	if honeypots < 25 || honeypots > 75 {
		t.Fatalf("honeypot epochs %d/100; schedule biased", honeypots)
	}
	next := s.NextHoneypotEpoch(0)
	if next < 0 || !s.HoneypotAt(next) {
		t.Fatalf("NextHoneypotEpoch broken: %d", next)
	}
	if s.StartTime(3) != 30 {
		t.Fatal("StartTime wrong")
	}
}

func TestScheduleValidation(t *testing.T) {
	cases := []struct{ n, k, member int }{
		{2, 0, 0}, {2, 2, 0}, {2, 1, 2}, {2, 1, -1},
	}
	for i, c := range cases {
		if _, err := NewSchedule([]byte("x"), c.n, c.k, c.member, 10, 0.1, 10); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewSchedule([]byte("x"), 2, 1, 0, 10, 6, 10); err == nil {
		t.Error("guard >= m/2 accepted")
	}
}

func TestInterASCapture(t *testing.T) {
	sim, g, serverAS, attackerAS := chainTopo(t, 5)
	def := NewDefense(g, 10, Config{})
	def.DeployAll()
	sched := testSchedule(t, 10, 40)
	srv := NewServer(def, serverAS, sched)
	atk := NewAttacker(def, attackerAS, srv, 50)

	var captures []Capture
	def.OnCapture = func(c Capture) { captures = append(captures, c) }
	sim.At(0.5, func() { atk.Start() })
	if err := sim.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	if len(captures) != 1 {
		t.Fatalf("captures = %d, want 1", len(captures))
	}
	if captures[0].AS != attackerAS.ID {
		t.Fatalf("captured in AS %d, want attacker AS %d", captures[0].AS, attackerAS.ID)
	}
	if !atk.Captured() {
		t.Fatal("attacker not marked captured")
	}
	// The attack must be silenced: sends stop growing.
	sent := atk.Sent
	if err := sim.RunUntil(450); err != nil {
		t.Fatal(err)
	}
	if atk.Sent != sent {
		t.Fatal("captured attacker kept sending")
	}
}

func TestSessionsFollowWindows(t *testing.T) {
	sim, g, serverAS, attackerAS := chainTopo(t, 3)
	def := NewDefense(g, 10, Config{IntraASTime: 1e6}) // never complete intra-AS
	def.DeployAll()
	sched := testSchedule(t, 10, 40)
	srv := NewServer(def, serverAS, sched)
	atk := NewAttacker(def, attackerAS, srv, 50)
	sim.At(0.5, func() { atk.Start() })

	// Pick a honeypot epoch followed by an active epoch, so sessions
	// observed afterwards cannot belong to a new window.
	hp := -1
	for e := 0; e < sched.Epochs()-1; e++ {
		if sched.HoneypotAt(e) && !sched.HoneypotAt(e+1) {
			hp = e
			break
		}
	}
	if hp < 0 {
		t.Fatal("no honeypot epoch followed by an active one")
	}
	// Mid-window: transit sessions exist.
	if err := sim.RunUntil(sched.StartTime(hp) + 5); err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, a := range g.ASes() {
		if a.Transit && a.HSM().ActiveSessions() > 0 {
			active++
		}
	}
	if active == 0 {
		t.Fatal("no transit sessions mid-window")
	}
	// After the window closes (+ control latency), transit sessions
	// are cancelled; the stub retains its session for the pending
	// intra-AS traceback (Sec. 5.1).
	if err := sim.RunUntil(sched.StartTime(hp+1) + 2); err != nil {
		t.Fatal(err)
	}
	for _, a := range g.ASes() {
		if a.Transit && a.HSM().ActiveSessions() > 0 {
			t.Fatalf("transit %v retains a session after cancel", a)
		}
	}
	if attackerAS.HSM().ActiveSessions() != 1 {
		t.Fatal("stub AS did not retain its session for intra-AS traceback")
	}
}

func TestActivationThreshold(t *testing.T) {
	sim, g, serverAS, attackerAS := chainTopo(t, 3)
	def := NewDefense(g, 10, Config{ActivationThreshold: 1000})
	def.DeployAll()
	sched := testSchedule(t, 10, 30)
	srv := NewServer(def, serverAS, sched)
	atk := NewAttacker(def, attackerAS, srv, 1) // 1 pkt/s: far below threshold per window
	sim.At(0.5, func() { atk.Start() })
	if err := sim.RunUntil(290); err != nil {
		t.Fatal(err)
	}
	if srv.RequestsSent != 0 {
		t.Fatal("threshold ignored")
	}
	if len(def.Captures()) != 0 {
		t.Fatal("captured below threshold")
	}
}

func TestPartialDeploymentBridge(t *testing.T) {
	sim, g, serverAS, attackerAS := chainTopo(t, 5)
	def := NewDefense(g, 10, Config{})
	// Two legacy transit ASes in the middle.
	for _, a := range g.ASes() {
		if a.ID == 2 || a.ID == 3 {
			def.DeployLegacy(a)
		} else {
			def.DeployAS(a)
		}
	}
	sched := testSchedule(t, 10, 40)
	srv := NewServer(def, serverAS, sched)
	atk := NewAttacker(def, attackerAS, srv, 50)
	sim.At(0.5, func() { atk.Start() })
	if err := sim.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	if len(def.Captures()) != 1 {
		t.Fatalf("piggyback bridge failed: %d captures", len(def.Captures()))
	}
	if atk.Sent == 0 || !atk.Captured() {
		t.Fatal("inconsistent attacker state")
	}
}

func TestProgressiveInterAS(t *testing.T) {
	// Low-rate on-off attacker over a long AS path: basic stalls,
	// progressive accumulates the frontier and captures.
	run := func(progressive bool) (int, int64) {
		sim, g, serverAS, attackerAS := chainTopo(t, 10)
		def := NewDefense(g, 10, Config{Progressive: progressive, Rho: 6})
		def.DeployAll()
		sched := testSchedule(t, 10, 400)
		srv := NewServer(def, serverAS, sched)
		atk := NewAttacker(def, attackerAS, srv, 2)
		atk.Ton, atk.Toff = 0.6, 6.4
		sim.At(0.5, func() { atk.Start() })
		if err := sim.RunUntil(3500); err != nil {
			t.Fatal(err)
		}
		return len(def.Captures()), srv.ReportsReceived
	}
	basicCaptures, _ := run(false)
	progCaptures, reports := run(true)
	if basicCaptures != 0 {
		t.Fatalf("basic captured a short-burst attacker (%d)", basicCaptures)
	}
	if progCaptures != 1 {
		t.Fatalf("progressive failed to capture (reports=%d)", reports)
	}
	if reports == 0 {
		t.Fatal("no frontier reports")
	}
}

func TestMarkingVsTunnelingBothWork(t *testing.T) {
	for _, mode := range []IngressMode{Marking, Tunneling} {
		sim, g, serverAS, attackerAS := chainTopo(t, 4)
		def := NewDefense(g, 10, Config{Mode: mode})
		def.DeployAll()
		sched := testSchedule(t, 10, 40)
		srv := NewServer(def, serverAS, sched)
		atk := NewAttacker(def, attackerAS, srv, 50)
		sim.At(0.5, func() { atk.Start() })
		if err := sim.RunUntil(400); err != nil {
			t.Fatal(err)
		}
		if len(def.Captures()) != 1 {
			t.Fatalf("mode %v: captures = %d", mode, len(def.Captures()))
		}
		if def.IngressLookups == 0 {
			t.Fatalf("mode %v: no ingress identifications", mode)
		}
	}
}

func TestIngressModeStrings(t *testing.T) {
	if Marking.String() == "" || Tunneling.String() == "" {
		t.Fatal("empty mode name")
	}
}

func TestOverheadLinearInPath(t *testing.T) {
	// Sec. 5.3: control messages scale with the attack tree, not the
	// attack volume.
	sim, g, serverAS, attackerAS := chainTopo(t, 6)
	def := NewDefense(g, 10, Config{})
	def.DeployAll()
	sched := testSchedule(t, 10, 40)
	srv := NewServer(def, serverAS, sched)
	atk := NewAttacker(def, attackerAS, srv, 200) // heavy flood
	sim.At(0.5, func() { atk.Start() })
	if err := sim.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	if def.MsgSent == 0 {
		t.Fatal("no control messages")
	}
	if def.MsgSent > 200 {
		t.Fatalf("control messages (%d) scale with attack volume (%d packets)", def.MsgSent, atk.Sent)
	}
	if atk.Sent < 1000 {
		t.Fatalf("attack too small for the comparison: %d", atk.Sent)
	}
}
