package asnet

import (
	"testing"

	"repro/internal/des"
)

func TestGenerateTopologyShape(t *testing.T) {
	sim := des.New()
	g := NewGraph(sim)
	p := DefaultTopoParams()
	transits, stubs, err := GenerateTopology(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(transits) != p.Transits || len(stubs) != p.Stubs {
		t.Fatalf("sizes %d/%d", len(transits), len(stubs))
	}
	// Fully connected: every stub reaches every other stub.
	for _, a := range stubs {
		for _, b := range stubs {
			if g.Hops(a.ID, b.ID) < 0 {
				t.Fatalf("%v cannot reach %v", a, b)
			}
		}
	}
	// Stubs have exactly one provider; transits are flagged transit.
	for _, s := range stubs {
		if s.Transit {
			t.Fatal("stub flagged transit")
		}
		if len(s.Neighbors()) != 1 {
			t.Fatalf("stub with %d providers", len(s.Neighbors()))
		}
	}
	for _, tr := range transits {
		if !tr.Transit {
			t.Fatal("transit not flagged")
		}
	}
}

func TestGenerateTopologyDeterminism(t *testing.T) {
	shape := func(seed int64) []int {
		g := NewGraph(des.New())
		p := DefaultTopoParams()
		p.Seed = seed
		_, stubs, err := GenerateTopology(g, p)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(stubs))
		for i, s := range stubs {
			out[i] = int(s.Neighbors()[0].ID)
		}
		return out
	}
	a, b := shape(7), shape(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different topology")
		}
	}
}

func TestGenerateTopologyValidation(t *testing.T) {
	g := NewGraph(des.New())
	if _, _, err := GenerateTopology(g, TopoParams{Transits: 0, Stubs: 1}); err == nil {
		t.Fatal("accepted zero transits")
	}
	if _, _, err := GenerateTopology(g, TopoParams{Transits: 1, Stubs: 0}); err == nil {
		t.Fatal("accepted zero stubs")
	}
}

func TestMultiASAttackAllCaptured(t *testing.T) {
	sim := des.New()
	g := NewGraph(sim)
	p := DefaultTopoParams()
	p.Seed = 3
	_, stubs, err := GenerateTopology(g, p)
	if err != nil {
		t.Fatal(err)
	}
	def := NewDefense(g, 10, Config{})
	def.DeployAll()
	sched := testSchedule(t, 10, 80)
	srv := NewServer(def, stubs[0], sched)

	// Zombies in eight distinct stub ASes.
	var zombies []*Attacker
	for i := 1; i <= 8; i++ {
		zombies = append(zombies, NewAttacker(def, stubs[i], srv, 25))
	}
	sim.At(0.5, func() {
		for _, z := range zombies {
			z.Start()
		}
	})
	if err := sim.RunUntil(800); err != nil {
		t.Fatal(err)
	}
	if got := len(def.Captures()); got != len(zombies) {
		t.Fatalf("captured %d of %d zombies", got, len(zombies))
	}
	// Each capture happened in the zombie's own AS.
	for _, c := range def.Captures() {
		if c.Attacker.AS.ID != c.AS {
			t.Fatalf("capture in AS %d but zombie lives in %v", c.AS, c.Attacker.AS)
		}
	}
	for _, z := range zombies {
		if !z.Captured() {
			t.Fatal("zombie not marked captured")
		}
	}
}

func TestSameASAttackerAndServer(t *testing.T) {
	// Degenerate case: zombie and server share a stub AS — intra-AS
	// traceback alone must handle it.
	sim := des.New()
	g := NewGraph(sim)
	home := g.AddAS(false)
	up := g.AddAS(true)
	g.Connect(home, up)
	g.ComputeRoutes()
	def := NewDefense(g, 10, Config{})
	def.DeployAll()
	sched := testSchedule(t, 10, 40)
	srv := NewServer(def, home, sched)
	z := NewAttacker(def, home, srv, 25)
	sim.At(0.5, func() { z.Start() })
	if err := sim.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	if len(def.Captures()) != 1 {
		t.Fatalf("same-AS zombie not captured: %d", len(def.Captures()))
	}
}
