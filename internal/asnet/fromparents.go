package asnet

import (
	"fmt"

	"repro/internal/des"
)

// FromParents materializes an AS-level Graph from a parent-array tree
// — the struct-of-arrays form topology.ASGraph emits. parent[0] must
// be -1 (the root); every other entry names an earlier AS. transit
// flags which ASes are transit (deployment candidates for HSMs);
// stubs originate traffic only. Routes are computed before returning.
//
// The dense per-AS route matrix in this plane is O(ASes^2), so the
// converter is meant for AS-level studies at moderate scale (up to a
// few thousand ASes); router-level internet sweeps stay on
// netsim.Cluster's compressed tables.
func FromParents(sim *des.Simulator, parent []int32, transit []bool) *Graph {
	if len(parent) == 0 || parent[0] != -1 {
		panic("asnet: parent array must start with a -1 root")
	}
	if len(transit) != len(parent) {
		panic("asnet: transit mask length mismatch")
	}
	g := NewGraph(sim)
	for i := range parent {
		g.AddAS(transit[i])
	}
	for i := 1; i < len(parent); i++ {
		p := parent[i]
		if p < 0 || p >= int32(i) {
			panic(fmt.Sprintf("asnet: AS %d has invalid parent %d", i, p))
		}
		g.Connect(g.ases[p], g.ases[i])
	}
	g.ComputeRoutes()
	return g
}
