package asnet

import (
	"testing"

	"repro/internal/des"
	"repro/internal/topology"
)

func TestFromParentsMirrorsASGraph(t *testing.T) {
	g := topology.GenerateASGraph(topology.ASGraphParams{ASes: 400, Gamma: 2.1, Seed: 13})
	sim := des.New()
	ag := FromParents(sim, g.Parent, g.TransitMask())

	if len(ag.ASes()) != 400 {
		t.Fatalf("got %d ASes, want 400", len(ag.ASes()))
	}
	for i, a := range ag.ASes() {
		if a.Transit != g.Transit(i) {
			t.Fatalf("AS %d transit mismatch", i)
		}
		want := int(g.Degree[i])
		if got := len(a.Neighbors()); got != want {
			t.Fatalf("AS %d degree %d, want %d", i, got, want)
		}
	}
	// Hop distances agree with tree depth: the only path from any AS
	// to the root is the parent chain.
	for _, i := range []int{1, 17, 399} {
		if got := ag.Hops(ASID(i), 0); got != int(g.Depth[i]) {
			t.Fatalf("AS %d -> root hops %d, want depth %d", i, got, g.Depth[i])
		}
	}
}

func TestFromParentsRejectsMalformed(t *testing.T) {
	sim := des.New()
	for name, fn := range map[string]func(){
		"no-root":     func() { FromParents(sim, []int32{0, 0}, []bool{true, false}) },
		"mask-length": func() { FromParents(sim, []int32{-1, 0}, []bool{true}) },
		"fwd-parent":  func() { FromParents(sim, []int32{-1, 2, 0}, []bool{true, false, false}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
