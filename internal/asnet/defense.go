package asnet

import (
	"repro/internal/des"
)

// IngressMode selects how an HSM identifies the ingress edge router
// (and thus the upstream AS) of diverted honeypot traffic (Sec. 5.1).
type IngressMode int

const (
	// Marking is destination-end provider marking: edge routers stamp
	// their ID into the (to-be-discarded) honeypot traffic. Cheap and
	// inline.
	Marking IngressMode = iota
	// Tunneling diverts honeypot traffic into the HSM through GRE
	// tunnels from every edge router; ingress is inferred from the
	// tunnel. Slightly slower per packet (an extra traversal to the
	// HSM) but needs no header bits.
	Tunneling
)

func (m IngressMode) String() string {
	if m == Tunneling {
		return "tunneling"
	}
	return "marking"
}

// Config parameterizes the inter-AS defense.
type Config struct {
	// Mode selects the ingress-identification mechanism.
	Mode IngressMode
	// MarkDelay is the extra ingress-identification latency under
	// Marking (default 1 ms).
	MarkDelay float64
	// TunnelDelay is the extra latency under Tunneling: the diverted
	// packet's detour through the tunnel to the HSM (default 15 ms).
	TunnelDelay float64
	// IntraASTime abstracts the router-level traceback inside an
	// attack-hosting AS (modelled in detail by internal/core); when a
	// stub AS identifies locally originated honeypot traffic, the
	// attacker is captured after this delay (default 0.5 s).
	IntraASTime float64
	// ActivationThreshold is the honeypot packet count needed before
	// the server triggers back-propagation (default 1).
	ActivationThreshold int
	// SessionLifetime is the safety expiry of HSM sessions (default
	// 2 epochs, set at deployment time).
	SessionLifetime float64
	// Progressive enables the intermediate-AS list (Sec. 6).
	Progressive bool
	// Rho is the ρ retention threshold (default 3).
	Rho int
	// Tau is the server's per-hop setup estimate for scheduling
	// direct requests (default = graph CtrlDelay × 2).
	Tau float64
}

func (c *Config) fillDefaults(g *Graph, epochLen float64) {
	if c.MarkDelay <= 0 {
		c.MarkDelay = 0.001
	}
	if c.TunnelDelay <= 0 {
		c.TunnelDelay = 0.015
	}
	if c.IntraASTime <= 0 {
		c.IntraASTime = 0.5
	}
	if c.ActivationThreshold <= 0 {
		c.ActivationThreshold = 1
	}
	if c.SessionLifetime <= 0 {
		c.SessionLifetime = 2 * epochLen
	}
	if c.Rho <= 0 {
		c.Rho = 3
	}
	if c.Tau <= 0 {
		c.Tau = 2 * g.CtrlDelay
	}
}

// Capture records an attacker stopped by intra-AS traceback in its
// home AS.
type Capture struct {
	Attacker *Attacker
	AS       ASID
	Time     float64
}

// Defense is one inter-AS honeypot back-propagation deployment.
type Defense struct {
	Cfg Config
	g   *Graph

	servers  []*Server
	captures []Capture
	// OnCapture fires for each capture.
	OnCapture func(Capture)

	// MsgSent counts HSM control messages (requests, cancels,
	// reports, piggybacks).
	MsgSent int64
	// IngressLookups counts ingress identifications (the per-packet
	// work of the marking/tunneling mechanism).
	IngressLookups int64
	// LeaseExpiries counts sessions closed by their lease rather than
	// an explicit cancel — the self-healing path for lost teardowns.
	LeaseExpiries int64
	floodSeq      int64
}

// NewDefense builds a defense over the graph. epochLen feeds default
// session lifetimes.
func NewDefense(g *Graph, epochLen float64, cfg Config) *Defense {
	cfg.fillDefaults(g, epochLen)
	return &Defense{Cfg: cfg, g: g}
}

// DeployAS installs an HSM in the AS.
func (d *Defense) DeployAS(a *AS) *HSM {
	if a.hsm != nil {
		return a.hsm
	}
	a.legacy = nil
	a.hsm = &HSM{as: a, d: d, sessions: map[*Server]*hsmSession{}}
	return a.hsm
}

// DeployLegacy marks the AS as non-deploying; it relays piggybacked
// announcements only.
func (d *Defense) DeployLegacy(a *AS) *Legacy {
	if a.legacy != nil {
		return a.legacy
	}
	a.hsm = nil
	a.legacy = &Legacy{as: a, d: d, seen: map[int64]bool{}}
	return a.legacy
}

// DeployAll installs HSMs everywhere.
func (d *Defense) DeployAll() {
	for _, a := range d.g.ases {
		d.DeployAS(a)
	}
}

// Captures returns recorded captures in time order.
func (d *Defense) Captures() []Capture { return d.captures }

func (d *Defense) recordCapture(c Capture) {
	d.captures = append(d.captures, c)
	if d.OnCapture != nil {
		d.OnCapture(c)
	}
}

// ingressDelay is the latency of identifying one packet's ingress
// point under the configured mode.
func (d *Defense) ingressDelay() float64 {
	if d.Cfg.Mode == Tunneling {
		return d.Cfg.TunnelDelay
	}
	return d.Cfg.MarkDelay
}

// sendCtrl delivers a control thunk to a target AS after the control
// latency for the AS-hop distance from `from` (1 for neighbors; the
// server's direct messages cross several hops).
func (d *Defense) sendCtrl(from, to ASID, deliver func()) {
	hops := d.g.Hops(from, to)
	if hops < 0 {
		return
	}
	if hops == 0 {
		hops = 1
	}
	d.MsgSent++
	d.g.Sim.After(float64(hops)*d.g.CtrlDelay, deliver)
}

// hsmSession is a honeypot session at one HSM: the record of the
// protected server plus the set of upstream ASes honeypot traffic
// entered from (Sec. 5.1).
type hsmSession struct {
	server *Server
	epoch  int
	// ingress counts honeypot packets per upstream neighbor AS.
	ingress map[ASID]int
	// requested marks neighbors the session was propagated to.
	requested map[ASID]bool
	// sentUpstream counts propagations; zero at cancel time makes
	// this AS a progressive frontier.
	sentUpstream int
	// intraAS marks that local-origin traffic was seen and intra-AS
	// traceback is running (stub ASes retain their session for it).
	intraAS bool
	expiry  des.Event
}

// HSM is an AS's honeypot session manager.
type HSM struct {
	as       *AS
	d        *Defense
	sessions map[*Server]*hsmSession

	SessionsCreated int64
	Propagations    int64
}

// HasSession reports whether a session for the server is active.
func (h *HSM) HasSession(s *Server) bool {
	_, ok := h.sessions[s]
	return ok
}

// ActiveSessions returns the live session count.
func (h *HSM) ActiveSessions() int { return len(h.sessions) }

// openSession creates or refreshes the session.
func (h *HSM) openSession(s *Server, epoch int) {
	sess, ok := h.sessions[s]
	if !ok {
		sess = &hsmSession{
			server:    s,
			epoch:     epoch,
			ingress:   map[ASID]int{},
			requested: map[ASID]bool{},
		}
		h.sessions[s] = sess
		h.SessionsCreated++
	} else {
		sess.epoch = epoch
	}
	h.d.g.Sim.Cancel(sess.expiry)
	sess.expiry = h.d.g.Sim.AfterNamed(h.d.Cfg.SessionLifetime, "asnet-session-lease", func() {
		h.d.LeaseExpiries++
		h.closeSession(s, false)
	})
}

// closeSession tears the session down, forwarding cancels and
// emitting the progressive frontier report.
func (h *HSM) closeSession(s *Server, propagate bool) {
	sess, ok := h.sessions[s]
	if !ok {
		return
	}
	// A stub AS holding an in-progress intra-AS traceback refuses
	// cancels until it completes (Sec. 5.1). Lease-driven closes pass:
	// the lease was extended past the traceback when it started, so by
	// the time it fires the retention is moot and honoring it would
	// leak the session.
	if sess.intraAS && !h.as.Transit && propagate {
		return
	}
	delete(h.sessions, s)
	h.d.g.Sim.Cancel(sess.expiry)
	if !propagate {
		return
	}
	for nb := range sess.requested {
		nbAS := h.d.g.AS(nb)
		if nbAS.Deployed() {
			target := nbAS.hsm
			h.d.sendCtrl(h.as.ID, nb, func() { target.closeSession(s, true) })
		} else if nbAS.legacy != nil {
			h.d.floodSeq++
			nbAS.legacy.relay(&piggyback{kind: pbCancel, server: s, epoch: sess.epoch, id: h.d.floodSeq}, h.as.ID)
			h.d.MsgSent++
		}
	}
	if h.d.Cfg.Progressive && sess.sentUpstream == 0 && h.as.Transit {
		now := h.d.g.Sim.Now()
		origin := h.as.ID
		epoch := sess.epoch
		h.d.sendCtrl(h.as.ID, s.Home.ID, func() {
			s.handleReport(origin, epoch, now)
		})
	}
}

// observe processes one honeypot-destined packet crossing (or
// terminating in) this AS while a session is active. from is the
// upstream neighbor AS, or -1 when the packet originated inside this
// AS.
func (h *HSM) observe(s *Server, from ASID, origin *Attacker) {
	sess, ok := h.sessions[s]
	if !ok {
		return
	}
	sim := h.d.g.Sim
	if from < 0 {
		// Locally originated attack traffic: this AS hosts the
		// attacker. Run intra-AS traceback (router-level detail in
		// internal/core) and shut the attacker's access port.
		if sess.intraAS {
			return
		}
		sess.intraAS = true
		// Stub-AS retention (Sec. 5.1) expressed as a lease extension:
		// the session must outlive the in-progress traceback, not just
		// the honeypot epoch, so re-arm its lease past the traceback's
		// completion with slack.
		sim.Cancel(sess.expiry)
		s2 := s
		sess.expiry = sim.AfterNamed(h.d.Cfg.IntraASTime*1.5, "asnet-session-lease", func() {
			h.d.LeaseExpiries++
			h.closeSession(s2, false)
		})
		sim.After(h.d.Cfg.IntraASTime, func() {
			if origin.captured {
				return
			}
			origin.captured = true
			h.d.recordCapture(Capture{Attacker: origin, AS: h.as.ID, Time: sim.Now()})
			// Intra-AS traceback done: the retained stub session can
			// now be removed (the MAC filter persists in the model).
			sess.intraAS = false
			h.closeSession(s, false)
		})
		return
	}
	// Ingress identification (marking or tunnel divert) takes a
	// moment; then propagate the session upstream if new.
	h.d.IngressLookups++
	sim.After(h.d.ingressDelay(), func() {
		cur, ok := h.sessions[s]
		if !ok || cur != sess {
			return
		}
		sess.ingress[from]++
		if sess.requested[from] {
			return
		}
		sess.requested[from] = true
		sess.sentUpstream++
		h.Propagations++
		h.propagate(s, sess.epoch, from)
	})
}

func (h *HSM) propagate(s *Server, epoch int, to ASID) {
	nbAS := h.d.g.AS(to)
	if nbAS.Deployed() {
		target := nbAS.hsm
		h.d.sendCtrl(h.as.ID, to, func() { target.openSession(s, epoch) })
		return
	}
	if nbAS.legacy != nil {
		// Piggyback over routing announcements across the deployment
		// gap (Sec. 5.3).
		h.d.floodSeq++
		h.d.MsgSent++
		nbAS.legacy.relay(&piggyback{kind: pbRequest, server: s, epoch: epoch, id: h.d.floodSeq}, h.as.ID)
	}
}

// receivePiggyback terminates a flood at a deploying AS.
func (h *HSM) receivePiggyback(p *piggyback) {
	switch p.kind {
	case pbRequest:
		h.openSession(p.server, p.epoch)
	case pbCancel:
		h.closeSession(p.server, true)
	}
}

type pbKind int

const (
	pbRequest pbKind = iota
	pbCancel
)

// piggyback is a request/cancel bridged over routing announcements.
type piggyback struct {
	kind   pbKind
	server *Server
	epoch  int
	id     int64
}

// Legacy is a non-deploying AS: it relays piggybacked announcements
// to all neighbors (routing messages propagate regardless of defense
// support) and does nothing else.
type Legacy struct {
	as   *AS
	d    *Defense
	seen map[int64]bool

	Relayed int64
}

func (l *Legacy) relay(p *piggyback, from ASID) {
	if l.seen[p.id] {
		return
	}
	l.seen[p.id] = true
	for _, nb := range l.as.neighbors {
		if nb.ID == from {
			continue
		}
		nb := nb
		l.Relayed++
		l.d.MsgSent++
		l.d.g.Sim.After(l.d.g.CtrlDelay, func() {
			if nb.Deployed() {
				nb.hsm.receivePiggyback(p)
			} else if nb.legacy != nil {
				nb.legacy.relay(p, l.as.ID)
			}
		})
	}
}
