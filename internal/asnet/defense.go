package asnet

import (
	"sort"

	"repro/internal/bounded"
	"repro/internal/hbp"
	"repro/internal/metrics"
)

// IngressMode selects how an HSM identifies the ingress edge router
// (and thus the upstream AS) of diverted honeypot traffic (Sec. 5.1).
type IngressMode int

const (
	// Marking is destination-end provider marking: edge routers stamp
	// their ID into the (to-be-discarded) honeypot traffic. Cheap and
	// inline.
	Marking IngressMode = iota
	// Tunneling diverts honeypot traffic into the HSM through GRE
	// tunnels from every edge router; ingress is inferred from the
	// tunnel. Slightly slower per packet (an extra traversal to the
	// HSM) but needs no header bits.
	Tunneling
)

func (m IngressMode) String() string {
	if m == Tunneling {
		return "tunneling"
	}
	return "marking"
}

// Config parameterizes the inter-AS defense.
type Config struct {
	// Mode selects the ingress-identification mechanism.
	Mode IngressMode
	// MarkDelay is the extra ingress-identification latency under
	// Marking (default 1 ms).
	MarkDelay float64
	// TunnelDelay is the extra latency under Tunneling: the diverted
	// packet's detour through the tunnel to the HSM (default 15 ms).
	TunnelDelay float64
	// IntraASTime abstracts the router-level traceback inside an
	// attack-hosting AS (modelled in detail by internal/core); when a
	// stub AS identifies locally originated honeypot traffic, the
	// attacker is captured after this delay (default 0.5 s).
	IntraASTime float64
	// ActivationThreshold is the honeypot packet count needed before
	// the server triggers back-propagation (default 1).
	ActivationThreshold int
	// SessionLifetime is the safety expiry of HSM sessions (default
	// 2 epochs, set at deployment time).
	SessionLifetime float64
	// Progressive enables the intermediate-AS list (Sec. 6).
	Progressive bool
	// Rho is the ρ retention threshold (default 3).
	Rho int
	// Tau is the server's per-hop setup estimate for scheduling
	// direct requests (default = graph CtrlDelay × 2).
	Tau float64
	// Auth enables the authenticated control plane: per-epoch MACs on
	// every HonSesReq/HonSesCancel/report (derived from a dedicated
	// control hash chain seeded by AuthKey), tag checks on piggybacked
	// announcements, and edge-router-mark validation. Off by default,
	// preserving the unhardened model bit for bit.
	Auth bool
	// AuthKey seeds the control chain under Auth.
	AuthKey []byte
	// Budget caps HSM session tables and legacy dedup sets. Zero
	// fields fall back to defaults — state is always bounded.
	Budget Budget
	// Watchdog enables the server-side stall detector: if the honeypot
	// keeps drawing attack traffic but captures stop advancing, the
	// session tree is re-seeded from the progressive frontier list.
	Watchdog bool
	// WatchdogInterval is the stall-check period (default 1 s).
	WatchdogInterval float64

	// IntraAS selects the intra-AS phase model: how a stub AS that
	// identified locally originated honeypot traffic locates and stops
	// the zombie. Nil selects FixedDelay (the paper's abstraction: a
	// capture after IntraASTime). EmbeddedIntraAS instead instantiates
	// a real router-level core.Defense per stub AS on the same clock
	// (see DESIGN.md, "Plane unification").
	IntraAS IntraASModel
}

func (c *Config) fillDefaults(g *Graph, epochLen float64) {
	if c.MarkDelay <= 0 {
		c.MarkDelay = 0.001
	}
	if c.TunnelDelay <= 0 {
		c.TunnelDelay = 0.015
	}
	if c.IntraASTime <= 0 {
		c.IntraASTime = 0.5
	}
	if c.ActivationThreshold <= 0 {
		c.ActivationThreshold = 1
	}
	if c.SessionLifetime <= 0 {
		c.SessionLifetime = 2 * epochLen
	}
	if c.Rho <= 0 {
		c.Rho = 3
	}
	if c.Tau <= 0 {
		c.Tau = 2 * g.CtrlDelay
	}
	if c.WatchdogInterval <= 0 {
		c.WatchdogInterval = 1
	}
	if c.IntraAS == nil {
		c.IntraAS = FixedDelay{}
	}
	c.Budget.FillDefaults()
}

// Capture records an attacker stopped by intra-AS traceback in its
// home AS.
type Capture struct {
	Attacker *Attacker
	AS       ASID
	Time     float64
}

// Defense is one inter-AS honeypot back-propagation deployment.
type Defense struct {
	Cfg Config
	g   *Graph

	servers []*Server
	// CaptureLog records captures in time order and fires the promoted
	// OnCapture hook; StateMeter tracks the promoted PeakState
	// high-water mark of StateSize over the run. Both are shared with
	// the router plane (internal/hbp).
	hbp.CaptureLog[Capture]
	hbp.StateMeter

	// MsgSent counts HSM control messages (requests, cancels,
	// reports, piggybacks).
	MsgSent int64
	// IngressLookups counts ingress identifications (the per-packet
	// work of the marking/tunneling mechanism).
	IngressLookups int64
	// LeaseExpiries counts sessions closed by their lease rather than
	// an explicit cancel — the self-healing path for lost teardowns.
	LeaseExpiries int64
	floodSeq      int64

	// Sec aggregates the adversarial-robustness counters (auth
	// rejects, evictions, mark-spoof rejects, ...).
	Sec metrics.SecurityStats

	// auth holds the per-epoch control MAC keys under Cfg.Auth
	// (domain-separated from the router plane's chain).
	auth *hbp.Auth
	// ctrlTap, when set, observes every signed outgoing control
	// message — the hook the replay adversary listens on.
	ctrlTap func(m *ctrlMsg, to ASID)
}

// NewDefense builds a defense over the graph. epochLen feeds default
// session lifetimes.
func NewDefense(g *Graph, epochLen float64, cfg Config) *Defense {
	cfg.fillDefaults(g, epochLen)
	return &Defense{Cfg: cfg, g: g, auth: hbp.NewAuth(asnetChainLabel, cfg.AuthKey, "asnet-ctrl-mac")}
}

// DeployAS installs an HSM in the AS.
func (d *Defense) DeployAS(a *AS) *HSM {
	if a.hsm != nil {
		return a.hsm
	}
	a.legacy = nil
	a.hsm = &HSM{as: a, d: d, sessions: map[*Server]*hsmSession{}}
	return a.hsm
}

// DeployLegacy marks the AS as non-deploying; it relays piggybacked
// announcements only.
func (d *Defense) DeployLegacy(a *AS) *Legacy {
	if a.legacy != nil {
		return a.legacy
	}
	a.hsm = nil
	a.legacy = &Legacy{as: a, d: d, seen: bounded.NewDedup(d.Cfg.Budget.DedupEntries)}
	return a.legacy
}

// DeployAll installs HSMs everywhere.
func (d *Defense) DeployAll() {
	for _, a := range d.g.ases {
		d.DeployAS(a)
	}
}

func (d *Defense) recordCapture(c Capture) {
	d.CaptureLog.Record(c)
}

// ingressDelay is the latency of identifying one packet's ingress
// point under the configured mode.
func (d *Defense) ingressDelay() float64 {
	if d.Cfg.Mode == Tunneling {
		return d.Cfg.TunnelDelay
	}
	return d.Cfg.MarkDelay
}

// sendCtrl delivers a control thunk to a target AS after the control
// latency for the AS-hop distance from `from` (1 for neighbors; the
// server's direct messages cross several hops).
func (d *Defense) sendCtrl(from, to ASID, deliver func()) {
	hops := d.g.Hops(from, to)
	if hops < 0 {
		return
	}
	if hops == 0 {
		hops = 1
	}
	d.MsgSent++
	d.g.Sim.After(float64(hops)*d.g.CtrlDelay, deliver)
}

// hsmSession is a honeypot session at one HSM: the record of the
// protected server plus the set of upstream ASes honeypot traffic
// entered from (Sec. 5.1). The lifecycle fields (epoch, lease,
// eviction rank) live in the shared hbp.SessionCore; the AS plane
// adds its substrate — the protected server and per-neighbor ingress
// counters.
type hsmSession struct {
	hbp.SessionCore
	server *Server
	// ingress counts honeypot packets per upstream neighbor AS.
	ingress map[ASID]int
	// requested marks neighbors the session was propagated to.
	requested map[ASID]bool
	// intraAS marks that local-origin traffic was seen and intra-AS
	// traceback is running (stub ASes retain their session for it).
	intraAS bool
}

// HSM is an AS's honeypot session manager.
type HSM struct {
	as       *AS
	d        *Defense
	sessions map[*Server]*hsmSession

	SessionsCreated int64
	Propagations    int64
}

// HasSession reports whether a session for the server is active.
func (h *HSM) HasSession(s *Server) bool {
	_, ok := h.sessions[s]
	return ok
}

// ActiveSessions returns the live session count.
func (h *HSM) ActiveSessions() int { return len(h.sessions) }

// openSession creates or refreshes the session. A full table runs
// admission control: the incoming session is ranked against the
// weakest resident by victim distance, and either a resident is shed
// or the request refused — the table never grows past its budget.
func (h *HSM) openSession(s *Server, epoch int) {
	sess, ok := h.sessions[s]
	if !ok {
		dist := h.d.g.Hops(h.as.ID, s.Home.ID)
		if len(h.sessions) >= h.d.Cfg.Budget.Sessions && !h.evictWeaker(dist, s) {
			h.d.Sec.AdmissionRejects++
			return
		}
		sess = &hsmSession{
			SessionCore: hbp.SessionCore{Epoch: epoch, Dist: dist},
			server:      s,
			ingress:     map[ASID]int{},
			requested:   map[ASID]bool{},
		}
		h.sessions[s] = sess
		h.SessionsCreated++
		h.d.noteState()
	} else {
		sess.Epoch = epoch
	}
	sess.RearmLease(h.d.g.Sim, h.d.Cfg.SessionLifetime, "asnet-session-lease", func() {
		h.d.LeaseExpiries++
		h.closeSession(s, false)
	})
}

// closeSession tears the session down, forwarding cancels and
// emitting the progressive frontier report.
func (h *HSM) closeSession(s *Server, propagate bool) {
	sess, ok := h.sessions[s]
	if !ok {
		return
	}
	// A stub AS holding an in-progress intra-AS traceback refuses
	// cancels until it completes (Sec. 5.1). Lease-driven closes pass:
	// the lease was extended past the traceback when it started, so by
	// the time it fires the retention is moot and honoring it would
	// leak the session.
	if sess.intraAS && !h.as.Transit && propagate {
		return
	}
	delete(h.sessions, s)
	sess.Drop(h.d.g.Sim)
	if !propagate {
		return
	}
	// Cancels fan out in sorted neighbor order so flood sequence
	// numbers — and therefore event ordering — are identical across
	// runs (the intra-node counterpart sorts ports the same way).
	nbs := make([]ASID, 0, len(sess.requested))
	for nb := range sess.requested {
		nbs = append(nbs, nb)
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i] < nbs[j] })
	for _, nb := range nbs {
		nbAS := h.d.g.AS(nb)
		if nbAS.Deployed() {
			target := nbAS.hsm
			cm := &ctrlMsg{op: opClose, server: s, epoch: sess.Epoch, origin: h.as.ID}
			h.d.sendAuthed(h.as.ID, nb, cm, target.handleCtrl)
		} else if nbAS.legacy != nil {
			h.d.floodSeq++
			pb := &piggyback{kind: pbCancel, server: s, epoch: sess.Epoch, id: h.d.floodSeq}
			h.d.signPiggyback(pb)
			nbAS.legacy.relay(pb, h.as.ID)
			h.d.MsgSent++
		}
	}
	if h.d.Cfg.Progressive && sess.SentUpstream == 0 && h.as.Transit {
		rm := &ctrlMsg{op: opReport, server: s, epoch: sess.Epoch, origin: h.as.ID, sentAt: h.d.g.Sim.Now()}
		h.d.sendAuthed(h.as.ID, s.Home.ID, rm, s.handleCtrl)
	}
}

// observe processes one honeypot-destined packet crossing (or
// terminating in) this AS while a session is active. from is the
// upstream neighbor AS, or -1 when the packet originated inside this
// AS.
func (h *HSM) observe(s *Server, from ASID, origin *Attacker) {
	sess, ok := h.sessions[s]
	if !ok {
		return
	}
	sim := h.d.g.Sim
	if from < 0 {
		// Locally originated attack traffic: this AS hosts the
		// attacker. Run the intra-AS phase (abstract fixed delay, or an
		// embedded router-level traceback — Config.IntraAS) to locate
		// the zombie and shut its access port.
		if sess.intraAS {
			return
		}
		sess.intraAS = true
		model := h.d.Cfg.IntraAS
		// Stub-AS retention (Sec. 5.1) expressed as a lease extension:
		// the session must outlive the in-progress traceback, not just
		// the honeypot epoch, so re-arm its lease past the phase
		// model's completion horizon.
		s2 := s
		sess.RearmLease(sim, model.Horizon(h, origin), "asnet-session-lease", func() {
			h.d.LeaseExpiries++
			h.closeSession(s2, false)
		})
		model.Begin(h, origin, func() {
			if origin.captured {
				return
			}
			origin.captured = true
			h.d.recordCapture(Capture{Attacker: origin, AS: h.as.ID, Time: sim.Now()})
			// Intra-AS traceback done: the retained stub session can
			// now be removed (the MAC filter persists in the model).
			sess.intraAS = false
			h.closeSession(s, false)
		})
		return
	}
	// Under the authenticated control plane, edge-router marks are
	// validated: a mark naming a non-neighbor AS is a spoof (the real
	// ingress edge router would have stamped itself) and is discarded
	// before it can poison the propagation set.
	if h.d.Cfg.Auth && !h.as.hasNeighbor(from) {
		h.d.Sec.MarkSpoofRejects++
		return
	}
	// Ingress identification (marking or tunnel divert) takes a
	// moment; then propagate the session upstream if new.
	h.d.IngressLookups++
	sim.After(h.d.ingressDelay(), func() {
		cur, ok := h.sessions[s]
		if !ok || cur != sess {
			return
		}
		sess.ingress[from]++
		sess.Total++
		if sess.requested[from] {
			return
		}
		sess.requested[from] = true
		sess.SentUpstream++
		h.Propagations++
		h.propagate(s, sess.Epoch, from)
	})
}

func (h *HSM) propagate(s *Server, epoch int, to ASID) {
	nbAS := h.d.g.AS(to)
	if nbAS.Deployed() {
		target := nbAS.hsm
		m := &ctrlMsg{op: opOpen, server: s, epoch: epoch, origin: h.as.ID}
		h.d.sendAuthed(h.as.ID, to, m, target.handleCtrl)
		return
	}
	if nbAS.legacy != nil {
		// Piggyback over routing announcements across the deployment
		// gap (Sec. 5.3).
		h.d.floodSeq++
		h.d.MsgSent++
		pb := &piggyback{kind: pbRequest, server: s, epoch: epoch, id: h.d.floodSeq}
		h.d.signPiggyback(pb)
		nbAS.legacy.relay(pb, h.as.ID)
	}
}

// receivePiggyback terminates a flood at a deploying AS. Under Auth
// the flood crossed unverifying legacy relays, so the tag is checked
// here, at the trust boundary.
func (h *HSM) receivePiggyback(p *piggyback) {
	if !h.d.piggybackOK(p) {
		return
	}
	switch p.kind {
	case pbRequest:
		h.openSession(p.server, p.epoch)
	case pbCancel:
		h.closeSession(p.server, true)
	}
}

type pbKind int

const (
	pbRequest pbKind = iota
	pbCancel
)

// piggyback is a request/cancel bridged over routing announcements.
type piggyback struct {
	kind   pbKind
	server *Server
	epoch  int
	id     int64
	// tag authenticates the announcement across unverifying legacy
	// relays (per-epoch MAC; only set under Config.Auth).
	tag []byte
}

// encode is the canonical byte string the piggyback tag covers.
func (p *piggyback) encode() []byte {
	m := ctrlMsg{op: ctrlOp(p.kind) + 8, server: p.server, epoch: p.epoch, origin: ASID(p.id)}
	return m.encode()
}

// Legacy is a non-deploying AS: it relays piggybacked announcements
// to all neighbors (routing messages propagate regardless of defense
// support) and does nothing else.
type Legacy struct {
	as *AS
	d  *Defense
	// seen dedups flood IDs under a hard cap: a spoofed-flood attack
	// slides the window instead of growing AS memory without bound.
	seen *bounded.Dedup

	Relayed int64
}

func (l *Legacy) relay(p *piggyback, from ASID) {
	evBefore := l.seen.Evictions
	dup := l.seen.Check(p.id)
	l.d.Sec.DedupEvictions += l.seen.Evictions - evBefore
	if dup {
		return
	}
	l.d.noteState()
	for _, nb := range l.as.neighbors {
		if nb.ID == from {
			continue
		}
		nb := nb
		l.Relayed++
		l.d.MsgSent++
		l.d.g.Sim.After(l.d.g.CtrlDelay, func() {
			if nb.Deployed() {
				nb.hsm.receivePiggyback(p)
			} else if nb.legacy != nil {
				nb.legacy.relay(p, l.as.ID)
			}
		})
	}
}
