package topology

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/des"
	"repro/internal/netsim"
)

// ASGraphParams seeds the power-law AS-graph generator.
type ASGraphParams struct {
	// ASes is the number of autonomous systems.
	ASes int
	// Gamma is the target exponent of the power-law degree
	// distribution P(k) ~ k^-Gamma. Preferential attachment with
	// kernel (k + beta), beta = Gamma - 3, realizes it; measured
	// internet AS graphs sit near 2.1 (the generator's default).
	// Must be > 2 (beta > -1).
	Gamma float64
	// Seed drives the generator; identical params give identical
	// graphs.
	Seed int64
}

// ASGraph is a generated AS-level topology in struct-of-arrays form:
// a preferential-attachment tree (m = 1), so it is routable by the
// compressed Euler-interval table with no overlay and costs O(ASes)
// to store regardless of scale. Leaf ASes are stubs (they host
// endpoints); interior ASes are transit.
type ASGraph struct {
	Params ASGraphParams
	// Parent[i] is the attachment target of AS i (Parent[0] = -1).
	Parent []int32
	// Degree[i] counts AS i's neighbors.
	Degree []int32
	// Depth[i] is the hop distance from AS 0.
	Depth []int32
	// Head[i] is the level-1 subtree (child of AS 0) containing AS i;
	// Head[0] = 0.
	Head []int32
}

// GenerateASGraph grows an AS tree by preferential attachment with
// kernel (degree + beta), beta = Gamma - 3: each new AS links to an
// existing AS chosen with probability proportional to (k + beta),
// which yields a degree distribution with exponent 3 + beta = Gamma.
// Negative beta (internet-like Gamma < 3) is realized by rejection
// sampling from the edge-endpoint ball; positive beta by mixing the
// ball with a uniform draw.
func GenerateASGraph(p ASGraphParams) *ASGraph {
	if p.ASes < 2 {
		panic("topology: AS graph needs at least 2 ASes")
	}
	if p.Gamma == 0 {
		p.Gamma = 2.1
	}
	if p.Gamma <= 2 {
		panic(fmt.Sprintf("topology: Gamma %.2f <= 2 is not realizable by linear preferential attachment", p.Gamma))
	}
	beta := p.Gamma - 3
	rng := des.NewRNG(p.Seed)

	n := p.ASes
	g := &ASGraph{
		Params: p,
		Parent: make([]int32, n),
		Degree: make([]int32, n),
		Depth:  make([]int32, n),
		Head:   make([]int32, n),
	}
	g.Parent[0] = -1
	// ball holds each AS once per incident edge: a uniform draw from
	// it is a degree-proportional draw.
	ball := make([]int32, 0, 2*n)
	for i := 1; i < n; i++ {
		var t int32
		switch {
		case i == 1:
			t = 0
		case beta < 0:
			// Rejection sampling: propose degree-proportionally, accept
			// with (k + beta)/k <= 1. Worst-case acceptance (degree-1
			// nodes) is 1 + beta > 0, so expected retries are bounded.
			for {
				t = ball[rng.Intn(len(ball))]
				k := float64(g.Degree[t])
				if rng.Float64() < (k+beta)/k {
					break
				}
			}
		case beta > 0:
			// Mixture: total kernel mass sum(k_j + beta) splits into the
			// ball's 2(i-1) and the uniform component beta*i.
			wBall := float64(2 * (i - 1))
			if rng.Float64()*(wBall+beta*float64(i)) < wBall {
				t = ball[rng.Intn(len(ball))]
			} else {
				t = int32(rng.Intn(i))
			}
		default:
			t = ball[rng.Intn(len(ball))]
		}
		g.Parent[i] = t
		g.Degree[i]++
		g.Degree[t]++
		g.Depth[i] = g.Depth[t] + 1
		if t == 0 {
			g.Head[i] = int32(i)
		} else {
			g.Head[i] = g.Head[t]
		}
		ball = append(ball, int32(i), t)
	}
	return g
}

// Transit reports whether AS i is a transit AS (interior; AS 0 is
// always transit). Stub ASes — the leaves — host endpoints.
func (g *ASGraph) Transit(i int) bool { return i == 0 || g.Degree[i] > 1 }

// TransitMask returns the per-AS transit flags, the form the asnet
// plane's converter consumes.
func (g *ASGraph) TransitMask() []bool {
	m := make([]bool, len(g.Parent))
	for i := range m {
		m[i] = g.Transit(i)
	}
	return m
}

// Stubs counts stub ASes.
func (g *ASGraph) Stubs() int {
	s := 0
	for i := range g.Parent {
		if !g.Transit(i) {
			s++
		}
	}
	return s
}

// DegreeHistogram returns degree → AS count, the paper-Fig.7-style
// validation view of the generated graph.
func (g *ASGraph) DegreeHistogram() map[int]int {
	h := map[int]int{}
	for _, d := range g.Degree {
		h[int(d)]++
	}
	return h
}

// estimateXmin is the tail cutoff for EstimateGamma. The
// continuous-approximation MLE is badly biased on discrete data at
// small degrees (it reads a pure zeta(3) sample as ~2.2); from
// degree 6 up the bias drops below a few percent, and both target
// exponents leave thousands of tail samples at 20k ASes.
const estimateXmin = 6

// EstimateGamma returns the Clauset-Shalizi-Newman tail estimate of
// the degree exponent: gamma^ = 1 + n_t / sum(ln(k_i/(x_min - 0.5)))
// over degrees k_i >= x_min. The generator validation test pins it
// near Params.Gamma.
func (g *ASGraph) EstimateGamma() float64 {
	var s float64
	n := 0
	for _, d := range g.Degree {
		if d < estimateXmin {
			continue
		}
		s += math.Log(float64(d) / (estimateXmin - 0.5))
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return 1 + float64(n)/s
}

// SpreadHosts distributes total end hosts evenly over the stub ASes
// (deterministically: earlier stubs absorb the remainder). Transit
// ASes host none — they only carry traffic.
func (g *ASGraph) SpreadHosts(total int) []int32 {
	counts := make([]int32, len(g.Parent))
	stubs := g.Stubs()
	if stubs == 0 || total <= 0 {
		return counts
	}
	base, rem := total/stubs, total%stubs
	for i := range g.Parent {
		if g.Transit(i) {
			continue
		}
		counts[i] = int32(base)
		if rem > 0 {
			counts[i]++
			rem--
		}
	}
	return counts
}

// PartitionSubtrees groups the level-1 subtrees into at most maxParts
// cluster parts: part 0 is the victim network (AS 0 plus the server
// pool), and whole subtrees — indivisible, so every cut edge is a
// root link — are packed onto parts 1..parts-1 by
// longest-processing-time greedy over their host counts. The result
// depends only on the graph and host spread, never on shard count or
// placement.
func (g *ASGraph) PartitionSubtrees(maxParts int, hosts []int32) (partOf []int32, parts int) {
	partOf = make([]int32, len(g.Parent))
	heads := []int32{}
	weight := map[int32]float64{}
	for i := 1; i < len(g.Parent); i++ {
		h := g.Head[i]
		if _, ok := weight[h]; !ok {
			heads = append(heads, h)
		}
		weight[h] += float64(hosts[i]) + 0.5
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	parts = maxParts
	if parts > len(heads)+1 {
		parts = len(heads) + 1
	}
	if parts < 1 {
		parts = 1
	}
	if parts == 1 {
		return partOf, 1
	}
	order := append([]int32(nil), heads...)
	sort.SliceStable(order, func(i, j int) bool { return weight[order[i]] > weight[order[j]] })
	load := make([]float64, parts)
	// Part 0 carries the victim pool and the bottleneck's event load;
	// leave it out of the greedy packing.
	headPart := map[int32]int32{}
	for _, h := range order {
		best := 1
		for s := 2; s < parts; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		headPart[h] = int32(best)
		load[best] += weight[h]
	}
	for i := 1; i < len(g.Parent); i++ {
		partOf[i] = headPart[g.Head[i]]
	}
	return partOf, parts
}

// InternetParams sizes the materialized internet-scale topology.
type InternetParams struct {
	Graph ASGraphParams
	// Hosts is the total number of end hosts, spread over stub ASes.
	Hosts int
	// Servers is the size of the victim's replicated server pool.
	Servers int
	// Parts is the cluster decomposition target (1 = everything in
	// one part; the single-network build).
	Parts int

	// Bottleneck is the victim ingress all server-bound traffic
	// crosses; ServerLink attaches pool servers to the gateway;
	// CoreLink joins AS routers (its delay is the cross-part
	// lookahead); LeafLink attaches hosts to their AS router.
	Bottleneck LinkClass
	ServerLink LinkClass
	CoreLink   LinkClass
	LeafLink   LinkClass

	// Routing selects the route-table representation. The default
	// RouteAuto picks the compressed table automatically: the AS graph
	// is a pure tree above autoCompressMin nodes.
	Routing netsim.RouteMode
}

// DefaultInternetParams mirrors the Fig. 9 link classes at AS scale.
func DefaultInternetParams() InternetParams {
	return InternetParams{
		Graph:      ASGraphParams{ASes: 10000, Gamma: 2.1, Seed: 1},
		Hosts:      100000,
		Servers:    5,
		Parts:      1,
		Bottleneck: LinkClass{Bandwidth: 10e6, Delay: 0.010},
		ServerLink: LinkClass{Bandwidth: 100e6, Delay: 0.001},
		CoreLink:   LinkClass{Bandwidth: 50e6, Delay: 0.010},
		LeafLink:   LinkClass{Bandwidth: 10e6, Delay: 0.010},
	}
}

// Internet is a materialized internet-scale topology on a Cluster.
type Internet struct {
	Params InternetParams
	Graph  *ASGraph

	Cluster *netsim.Cluster
	// Routers holds the per-AS router, indexed by AS (== NodeID).
	Routers []*netsim.Node
	// Root is AS 0's router — the client-side head of the bottleneck.
	Root     *netsim.Node
	ServerGW *netsim.Node
	Servers  []*netsim.Node
	// Hosts holds every end host; HostAS names each host's stub AS.
	Hosts  []*netsim.Node
	HostAS []int32
	// PartOf is the per-AS part assignment (hosts follow their AS;
	// the victim pool is part 0).
	PartOf []int32
	Parts  int

	Bottleneck *netsim.Link

	hostMin   netsim.NodeID
	serverSet map[netsim.NodeID]bool
}

// BuildInternet materializes the AS graph, victim pool and end hosts
// onto a cluster over the given sharded simulator. Creation order —
// AS routers in AS order, then the victim pool, then hosts grouped by
// stub AS — fixes cluster-global IDs and channel creation order
// independent of shard count, keeping sharded runs fingerprint-equal
// at every width. Parts are placed on shards by LPT greedy over host
// counts.
func BuildInternet(ss *des.ShardedSimulator, p InternetParams) *Internet {
	if p.Servers < 1 {
		panic("topology: internet build needs at least one server")
	}
	g := GenerateASGraph(p.Graph)
	hosts := g.SpreadHosts(p.Hosts)
	if p.Parts < 1 {
		p.Parts = 1
	}
	partOf, parts := g.PartitionSubtrees(p.Parts, hosts)

	// Place parts on shards: LPT greedy over per-part host weight.
	partWeight := make([]float64, parts)
	partWeight[0] = float64(p.Servers)
	for as, c := range hosts {
		partWeight[partOf[as]] += float64(c) + 0.5
	}
	place := make([]int, parts)
	order := make([]int, parts)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return partWeight[order[i]] > partWeight[order[j]] })
	load := make([]float64, ss.Shards())
	for _, part := range order {
		best := 0
		for s := 1; s < len(load); s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		place[part] = best
		load[best] += partWeight[part]
	}

	cl := netsim.NewCluster(ss, place)
	cl.Routing = p.Routing
	it := &Internet{
		Params: p, Graph: g, Cluster: cl,
		Routers: make([]*netsim.Node, p.Graph.ASes),
		HostAS:  make([]int32, 0, p.Hosts),
		PartOf:  partOf, Parts: parts,
		serverSet: make(map[netsim.NodeID]bool, p.Servers),
	}
	for i := 0; i < p.Graph.ASes; i++ {
		it.Routers[i] = cl.AddNode(int(partOf[i]), fmt.Sprintf("as%d", i))
	}
	it.Root = it.Routers[0]
	it.ServerGW = cl.AddNode(0, "gw")
	for j := 0; j < p.Servers; j++ {
		s := cl.AddNode(0, fmt.Sprintf("s%d", j))
		it.Servers = append(it.Servers, s)
		it.serverSet[s.ID] = true
	}
	// Hosts last, so their IDs are one contiguous range — IsHost is a
	// single comparison, no per-host map at 10^6 scale. They carry no
	// name: a million fmt.Sprintf strings would double the build's
	// footprint for debug labels nobody reads.
	it.hostMin = netsim.NodeID(p.Graph.ASes + 1 + p.Servers)
	for as := 0; as < p.Graph.ASes; as++ {
		for k := int32(0); k < hosts[as]; k++ {
			h := cl.AddNode(int(partOf[as]), "")
			it.Hosts = append(it.Hosts, h)
			it.HostAS = append(it.HostAS, int32(as))
		}
	}

	for i := 1; i < p.Graph.ASes; i++ {
		cl.Connect(it.Routers[g.Parent[i]], it.Routers[i], p.CoreLink.Bandwidth, p.CoreLink.Delay)
	}
	cl.Connect(it.Root, it.ServerGW, p.Bottleneck.Bandwidth, p.Bottleneck.Delay)
	for _, s := range it.Servers {
		cl.Connect(it.ServerGW, s, p.ServerLink.Bandwidth, p.ServerLink.Delay)
	}
	for i, h := range it.Hosts {
		cl.Connect(it.Routers[it.HostAS[i]], h, p.LeafLink.Bandwidth, p.LeafLink.Delay)
	}
	cl.ComputeRoutes()
	it.Bottleneck = it.Root.PortTo(it.ServerGW).Link()
	return it
}

// IsHost classifies end hosts (leaf hosts and pool servers) versus
// routers, the shape core.Defense expects.
func (it *Internet) IsHost(n *netsim.Node) bool {
	return n.ID >= it.hostMin || it.serverSet[n.ID]
}

// HostIndex returns the index into Hosts (and HostAS) of the host
// with the given ID, or -1 if the ID does not name an end host.
// Hosts occupy one contiguous ID range, so this is arithmetic — no
// per-host map at 10^6 scale.
func (it *Internet) HostIndex(id netsim.NodeID) int {
	i := int(id - it.hostMin)
	if i < 0 || i >= len(it.Hosts) {
		return -1
	}
	return i
}

// IsRouter reports whether a node is an AS router or the server
// gateway — the topology-derived deployment set, safe to consult from
// any part (core.Defense.RemoteDeployed).
func (it *Internet) IsRouter(n *netsim.Node) bool {
	return int(n.ID) < len(it.Routers) || n == it.ServerGW
}
