package topology

import (
	"math"
	"testing"

	"repro/internal/des"
)

func TestASGraphDeterminism(t *testing.T) {
	p := ASGraphParams{ASes: 3000, Gamma: 2.1, Seed: 7}
	a, b := GenerateASGraph(p), GenerateASGraph(p)
	for i := range a.Parent {
		if a.Parent[i] != b.Parent[i] {
			t.Fatalf("parent[%d] differs across identical params: %d vs %d", i, a.Parent[i], b.Parent[i])
		}
	}
	c := GenerateASGraph(ASGraphParams{ASes: 3000, Gamma: 2.1, Seed: 8})
	same := true
	for i := range a.Parent {
		if a.Parent[i] != c.Parent[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestASGraphShape(t *testing.T) {
	g := GenerateASGraph(ASGraphParams{ASes: 20000, Gamma: 2.1, Seed: 1})

	// Tree invariants: parents precede children, depth is consistent,
	// heads are children of the root.
	for i := 1; i < len(g.Parent); i++ {
		p := g.Parent[i]
		if p < 0 || p >= int32(i) {
			t.Fatalf("AS %d has parent %d outside [0,%d)", i, p, i)
		}
		if g.Depth[i] != g.Depth[p]+1 {
			t.Fatalf("AS %d depth %d, parent depth %d", i, g.Depth[i], g.Depth[p])
		}
		h := g.Head[i]
		if g.Parent[h] != 0 {
			t.Fatalf("AS %d head %d is not a child of the root", i, h)
		}
		if p != 0 && g.Head[p] != h {
			t.Fatalf("AS %d head %d disagrees with parent's head %d", i, h, g.Head[p])
		}
	}

	// Stubs are leaves and must dominate (power-law graphs are mostly
	// degree-1); the tail must be heavy — a hub far above any
	// exponential graph's max degree.
	hist := g.DegreeHistogram()
	if stubs := g.Stubs(); stubs <= len(g.Parent)/2 {
		t.Fatalf("stub ASes %d not a majority of %d", stubs, len(g.Parent))
	}
	maxDeg := 0
	for d := range hist {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 100 {
		t.Fatalf("max degree %d lacks a power-law hub", maxDeg)
	}
	if hist[1] < hist[2] || hist[2] < hist[3] {
		t.Fatalf("degree histogram not monotone at the head: %d, %d, %d", hist[1], hist[2], hist[3])
	}
}

func TestASGraphExponent(t *testing.T) {
	// The MLE exponent estimate should land near the configured target
	// and order correctly across targets (Fig. 7-style validation).
	est := func(gamma float64) float64 {
		g := GenerateASGraph(ASGraphParams{ASes: 20000, Gamma: gamma, Seed: 3})
		return g.EstimateGamma()
	}
	lo, hi := est(2.1), est(3.0)
	if math.Abs(lo-2.1) > 0.3 {
		t.Fatalf("estimated exponent %.3f too far from target 2.1", lo)
	}
	if math.Abs(hi-3.0) > 0.3 {
		t.Fatalf("estimated exponent %.3f too far from target 3.0", hi)
	}
	if lo >= hi {
		t.Fatalf("exponent estimates not ordered: gamma 2.1 -> %.3f, gamma 3.0 -> %.3f", lo, hi)
	}
}

func TestSpreadHosts(t *testing.T) {
	g := GenerateASGraph(ASGraphParams{ASes: 500, Gamma: 2.1, Seed: 2})
	hosts := g.SpreadHosts(10007)
	var total int32
	for as, c := range hosts {
		total += c
		if c > 0 && g.Transit(as) {
			t.Fatalf("transit AS %d assigned %d hosts", as, c)
		}
	}
	if int(total) != 10007 {
		t.Fatalf("spread %d hosts, want 10007", total)
	}
}

func TestPartitionSubtrees(t *testing.T) {
	g := GenerateASGraph(ASGraphParams{ASes: 2000, Gamma: 2.1, Seed: 5})
	hosts := g.SpreadHosts(20000)
	partOf, parts := g.PartitionSubtrees(8, hosts)
	if parts < 2 || parts > 8 {
		t.Fatalf("parts = %d", parts)
	}
	if partOf[0] != 0 {
		t.Fatalf("AS 0 on part %d, want 0", partOf[0])
	}
	for i := 1; i < len(partOf); i++ {
		if partOf[i] < 1 || partOf[i] >= int32(parts) {
			t.Fatalf("AS %d on part %d outside [1,%d)", i, partOf[i], parts)
		}
		// Subtrees are indivisible: the only cut edges are root links.
		if g.Parent[i] != 0 && partOf[i] != partOf[g.Parent[i]] {
			t.Fatalf("AS %d (part %d) split from parent %d (part %d)", i, partOf[i], g.Parent[i], partOf[g.Parent[i]])
		}
	}
	// Placement-independence: the partition is a pure function of the
	// graph and host spread.
	again, _ := g.PartitionSubtrees(8, hosts)
	for i := range partOf {
		if partOf[i] != again[i] {
			t.Fatalf("partition not deterministic at AS %d", i)
		}
	}
}

func TestBuildInternetSmall(t *testing.T) {
	p := DefaultInternetParams()
	p.Graph = ASGraphParams{ASes: 60, Gamma: 2.1, Seed: 11}
	p.Hosts = 240
	p.Servers = 3
	p.Parts = 4
	ss := des.NewSharded(1, 2)
	it := BuildInternet(ss, p)

	if len(it.Hosts) != 240 || len(it.Servers) != 3 || len(it.Routers) != 60 {
		t.Fatalf("counts: %d hosts, %d servers, %d routers", len(it.Hosts), len(it.Servers), len(it.Routers))
	}
	if got := it.Cluster.RouteKind(); got != "dense" {
		t.Fatalf("small internet should route dense under auto, got %q", got)
	}
	for _, h := range it.Hosts {
		if !it.IsHost(h) || it.IsRouter(h) {
			t.Fatalf("host %v misclassified", h)
		}
	}
	for _, s := range it.Servers {
		if !it.IsHost(s) {
			t.Fatalf("server %v not classified as host", s)
		}
	}
	for _, r := range it.Routers {
		if it.IsHost(r) || !it.IsRouter(r) {
			t.Fatalf("router %v misclassified", r)
		}
	}
	if !it.IsRouter(it.ServerGW) {
		t.Fatal("server gateway not classified as router")
	}
	// Every host reaches every server through the bottleneck head.
	for _, h := range it.Hosts[:10] {
		hops := it.Cluster.PathHops(h.ID, it.Servers[0].ID)
		if hops < 3 {
			t.Fatalf("host %v -> server path has %d hops", h, hops)
		}
	}
	if it.Bottleneck == nil {
		t.Fatal("bottleneck link not resolved")
	}
}

func TestBuildInternetCompressedAuto(t *testing.T) {
	p := DefaultInternetParams()
	p.Graph = ASGraphParams{ASes: 5000, Gamma: 2.1, Seed: 11}
	p.Hosts = 2000
	p.Servers = 2
	p.Parts = 6
	ss := des.NewSharded(1, 3)
	it := BuildInternet(ss, p)
	if got := it.Cluster.RouteKind(); got != "compressed" {
		t.Fatalf("internet-scale pure tree should auto-compress, got %q", got)
	}
	n := int64(len(it.Cluster.Nodes()))
	if rb := it.Cluster.RouteBytes(); rb > 64*n {
		t.Fatalf("compressed route table %d bytes for %d nodes exceeds 64 B/node", rb, n)
	}
	// Spot-check reachability across parts in both directions.
	if hops := it.Cluster.PathHops(it.Hosts[0].ID, it.Servers[1].ID); hops < 3 {
		t.Fatalf("host -> server hops = %d", hops)
	}
	if hops := it.Cluster.PathHops(it.Servers[1].ID, it.Hosts[len(it.Hosts)-1].ID); hops < 3 {
		t.Fatalf("server -> host hops = %d", hops)
	}
	if id := it.Hosts[0].ID; !it.IsHost(it.Cluster.Node(id)) {
		t.Fatal("cluster-global lookup lost a host")
	}
}
