package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/netsim"
)

func TestStringTopology(t *testing.T) {
	sim := des.New()
	tr := NewString(sim, 10, 1, LinkClass{Bandwidth: 1e6, Delay: 0.01})
	if len(tr.Servers) != 1 || len(tr.Leaves) != 1 {
		t.Fatalf("servers=%d leaves=%d", len(tr.Servers), len(tr.Leaves))
	}
	host := tr.Leaves[0]
	// host -> r9..r0 -> gw = 11 hops to the gateway.
	if got := tr.LeafHops(host); got != 11 {
		t.Fatalf("LeafHops = %d, want 11", got)
	}
	// Server is one hop beyond the gateway.
	if got := tr.Net.PathHops(host.ID, tr.Servers[0].ID); got != 12 {
		t.Fatalf("host->server hops = %d, want 12", got)
	}
	if !tr.IsHost(host) || !tr.IsHost(tr.Servers[0]) {
		t.Fatal("IsHost misclassifies end hosts")
	}
	if tr.IsHost(tr.ServerGW) {
		t.Fatal("IsHost misclassifies the gateway")
	}
	if tr.AccessRouter(host) == nil || tr.IsHost(tr.AccessRouter(host)) {
		t.Fatal("access router wrong for string host")
	}
	if tr.Bottleneck == nil || tr.Root == nil {
		t.Fatal("string topology missing root/bottleneck")
	}
}

func TestStringValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("hops<1 did not panic")
		}
	}()
	NewString(des.New(), 0, 1, LinkClass{Bandwidth: 1e6, Delay: 0.01})
}

func TestTreeShape(t *testing.T) {
	sim := des.New()
	p := DefaultParams()
	p.Leaves = 150
	tr := NewTree(sim, p)

	if len(tr.Leaves) != 150 {
		t.Fatalf("leaves = %d", len(tr.Leaves))
	}
	if len(tr.Servers) != p.Servers {
		t.Fatalf("servers = %d", len(tr.Servers))
	}
	// Every leaf has an access router that is a router, and its depth
	// lies within the configured band.
	for _, l := range tr.Leaves {
		ar := tr.AccessRouter(l)
		if ar == nil || tr.IsHost(ar) {
			t.Fatalf("leaf %v has bad access router %v", l, ar)
		}
		// Leaf to gateway: access depth + leaf link + bottleneck.
		h := tr.LeafHops(l)
		min := p.MinDepth + 2
		max := p.MinDepth + len(p.HopDist) - 1 + 2
		if h < min || h > max {
			t.Fatalf("leaf hop count %d outside [%d,%d]", h, min, max)
		}
	}
	// All traffic to servers crosses the bottleneck: next hop from
	// Root toward any server must be the bottleneck link.
	for _, s := range tr.Servers {
		nh := tr.Root.NextHop(s.ID)
		if nh == nil || nh.Link() != tr.Bottleneck {
			t.Fatalf("server %v not behind the bottleneck", s)
		}
	}
}

func TestTreeDeterminism(t *testing.T) {
	p := DefaultParams()
	p.Leaves = 60
	t1 := NewTree(des.New(), p)
	t2 := NewTree(des.New(), p)
	h1, h2 := t1.HopCountHistogram(), t2.HopCountHistogram()
	if len(h1) != len(h2) {
		t.Fatal("same seed produced different hop histograms")
	}
	for k, v := range h1 {
		if h2[k] != v {
			t.Fatalf("hop histogram differs at %d: %d vs %d", k, v, h2[k])
		}
	}
	p2 := p
	p2.Seed = 99
	t3 := NewTree(des.New(), p2)
	same := true
	h3 := t3.HopCountHistogram()
	for k, v := range h1 {
		if h3[k] != v {
			same = false
		}
	}
	if same && len(h1) == len(h3) {
		t.Log("warning: different seeds produced identical histograms (possible but unlikely)")
	}
}

func TestTreeHistograms(t *testing.T) {
	p := DefaultParams()
	p.Leaves = 400
	tr := NewTree(des.New(), p)
	hop := tr.HopCountHistogram()
	totalLeaves := 0
	for _, n := range hop {
		totalLeaves += n
	}
	if totalLeaves != 400 {
		t.Fatalf("hop histogram covers %d leaves, want 400", totalLeaves)
	}
	deg := tr.DegreeHistogram()
	totalRouters := 0
	for d, n := range deg {
		if d < 1 {
			t.Fatalf("router with degree %d", d)
		}
		totalRouters += n
	}
	if totalRouters != len(tr.Routers) {
		t.Fatalf("degree histogram covers %d routers, want %d", totalRouters, len(tr.Routers))
	}
	// Unimodal-ish spread: more than three distinct hop counts.
	if len(hop) < 4 {
		t.Fatalf("hop-count spread too narrow: %v", hop)
	}
}

func TestPlacementPolicies(t *testing.T) {
	p := DefaultParams()
	p.Leaves = 120
	tr := NewTree(des.New(), p)

	const nA = 30
	closeA, closeC := tr.PlaceAttackers(nA, Close, 1)
	farA, _ := tr.PlaceAttackers(nA, Far, 1)
	evenA, evenC := tr.PlaceAttackers(nA, Even, 1)

	if len(closeA) != nA || len(closeC) != p.Leaves-nA {
		t.Fatalf("close split %d/%d", len(closeA), len(closeC))
	}
	if len(evenA) != nA || len(evenC) != p.Leaves-nA {
		t.Fatalf("even split %d/%d", len(evenA), len(evenC))
	}

	mean := func(ns []*netsim.Node) float64 {
		s := 0
		for _, n := range ns {
			s += tr.LeafHops(n)
		}
		return float64(s) / float64(len(ns))
	}
	mc, mf, me := mean(closeA), mean(farA), mean(evenA)
	if !(mc < me && me < mf) {
		t.Fatalf("placement means not ordered: close=%.2f even=%.2f far=%.2f", mc, me, mf)
	}

	// Close attackers occupy the minimum available hop distances.
	maxClose := 0
	for _, a := range closeA {
		if h := tr.LeafHops(a); h > maxClose {
			maxClose = h
		}
	}
	for _, c := range closeC {
		if tr.LeafHops(c) < maxClose-0 {
			// Clients may tie with the boundary hop count but must
			// never be strictly closer than every attacker.
			if tr.LeafHops(c) < func() int {
				m := 1 << 30
				for _, a := range closeA {
					if h := tr.LeafHops(a); h < m {
						m = h
					}
				}
				return m
			}() {
				t.Fatal("a client is closer than the closest 'close' attacker")
			}
		}
	}
}

func TestPlacementDisjointAndComplete(t *testing.T) {
	p := DefaultParams()
	p.Leaves = 80
	tr := NewTree(des.New(), p)
	f := func(nRaw uint8, policyRaw uint8) bool {
		n := int(nRaw) % (len(tr.Leaves) + 1)
		policy := Placement(int(policyRaw) % 3)
		a, c := tr.PlaceAttackers(n, policy, 7)
		if len(a) != n || len(a)+len(c) != len(tr.Leaves) {
			return false
		}
		seen := map[netsim.NodeID]bool{}
		for _, x := range a {
			seen[x.ID] = true
		}
		for _, x := range c {
			if seen[x.ID] {
				return false
			}
			seen[x.ID] = true
		}
		return len(seen) == len(tr.Leaves)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementValidation(t *testing.T) {
	p := DefaultParams()
	p.Leaves = 10
	tr := NewTree(des.New(), p)
	defer func() {
		if recover() == nil {
			t.Error("oversized placement did not panic")
		}
	}()
	tr.PlaceAttackers(11, Even, 1)
}

func TestPlacementStrings(t *testing.T) {
	for _, pl := range []Placement{Even, Close, Far} {
		if pl.String() == "" {
			t.Fatal("empty placement name")
		}
	}
}

func TestHostWeightsConsistency(t *testing.T) {
	p := DefaultParams()
	p.Leaves = 90
	tr := NewTree(des.New(), p)
	w := tr.HostWeights()
	// The gateway's ingress from Root carries every leaf.
	in := tr.ServerGW.PortTo(tr.Root)
	if got := w.At(in); got != float64(p.Leaves) {
		t.Fatalf("gateway ingress weight %v, want %d", got, p.Leaves)
	}
	// Every leaf's own ingress port at its access router has weight
	// exactly 1 (one host behind it).
	for _, leaf := range tr.Leaves {
		ar := tr.AccessRouter(leaf)
		pt := ar.PortTo(leaf)
		if w.At(pt) != 1 {
			t.Fatalf("leaf ingress weight %v, want 1", w.At(pt))
		}
	}
	// Root's in-port weights over subtree ports sum to all leaves.
	sum := 0.0
	for _, pt := range tr.Root.Ports() {
		sum += w.At(pt)
	}
	if sum != float64(p.Leaves) {
		t.Fatalf("root ingress weights sum %v, want %d", sum, p.Leaves)
	}
}
