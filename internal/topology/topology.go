// Package topology builds the simulation networks of the paper's
// evaluation: the string topology of the model-validation experiments
// (Sec. 8.2) and random trees whose hop-count and node-degree
// distributions roughly match the histograms of Fig. 7 (Sec. 8.3).
// It also provides the close/far/even attacker-placement policies of
// Sec. 8.4.1.
package topology

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/netsim"
)

// LinkClass holds the bandwidth/delay of one class of links.
type LinkClass struct {
	Bandwidth float64 // bits/s
	Delay     float64 // seconds
}

// Params configures tree construction. The defaults mirror the
// paper's setup: five servers behind a 10 Mb/s bottleneck at the tree
// root; access and core links scaled so the bottleneck is the shared
// constraint.
type Params struct {
	// Leaves is the number of end hosts (clients + attackers).
	Leaves int
	// Servers is the size of the replicated server pool (N).
	Servers int

	// Bottleneck is the root link all server-bound traffic crosses.
	Bottleneck LinkClass
	// ServerLink attaches each server to the server-side gateway.
	ServerLink LinkClass
	// CoreLink connects interior routers.
	CoreLink LinkClass
	// LeafLink attaches end hosts to access routers.
	LeafLink LinkClass

	// HopDist gives the relative frequency of leaf hop counts
	// (distance in router hops from the tree root to the access
	// router, inclusive). Index 0 corresponds to MinDepth.
	HopDist []float64
	// MinDepth is the smallest access-router depth.
	MinDepth int
	// Reuse is the probability of walking into an existing child
	// router rather than creating a fresh one while placing a leaf's
	// access path; it controls interior node degree.
	Reuse float64
	// MaxChildren caps the number of child routers per interior
	// router (reuse is forced at the cap). Real routing trees have
	// small interior degrees — the paper's collateral-damage argument
	// ("a router with another two upstream routers") depends on it.
	MaxChildren int

	// Seed drives the generator; identical Params produce identical
	// topologies.
	Seed int64

	// Routing selects the route-table representation (netsim.RouteMode)
	// the built network computes. The zero value, RouteAuto, keeps
	// small trees on the historical dense table; equivalence tests
	// force RouteCompressed.
	Routing netsim.RouteMode
}

// DefaultParams returns the Fig. 9-style configuration. The paper's
// exact capacities are OCR-mangled; the relative relations (server
// links fastest, one shared bottleneck, uniform access/core links)
// follow its description in Sec. 8.3.
func DefaultParams() Params {
	return Params{
		Leaves:     200,
		Servers:    5,
		Bottleneck: LinkClass{Bandwidth: 10e6, Delay: 0.010},
		ServerLink: LinkClass{Bandwidth: 100e6, Delay: 0.001},
		CoreLink:   LinkClass{Bandwidth: 20e6, Delay: 0.010},
		LeafLink:   LinkClass{Bandwidth: 10e6, Delay: 0.010},
		// A unimodal spread of access depths 1..8 peaked near 4-5,
		// echoing measured Internet trees (paper Fig. 7). The small
		// weight at depths 1-2 gives the "close attacker" placements
		// hosts that branch off right next to the victim's network.
		HopDist:     []float64{0.04, 0.08, 0.15, 0.22, 0.20, 0.15, 0.10, 0.06},
		MinDepth:    1,
		Reuse:       0.7,
		MaxChildren: 4,
		Seed:        1,
	}
}

// Tree is a constructed simulation topology.
type Tree struct {
	Net *netsim.Network
	// Root is the client-side head of the bottleneck link; the whole
	// client/attacker tree hangs off it.
	Root *netsim.Node
	// ServerGW is the server-side gateway behind the bottleneck.
	ServerGW *netsim.Node
	// Servers are the replicated server hosts (pool of N).
	Servers []*netsim.Node
	// Leaves are the end hosts, in creation order.
	Leaves []*netsim.Node
	// Routers are interior routers including Root and ServerGW.
	Routers []*netsim.Node
	// Bottleneck is the root link whose utilization the experiments
	// measure.
	Bottleneck *netsim.Link

	access map[netsim.NodeID]*netsim.Node // leaf -> access router
	depth  map[netsim.NodeID]int          // access router depth from Root
	hosts  map[netsim.NodeID]bool         // end hosts (leaves + servers)
}

// AccessRouter returns the first-hop router of an end host.
func (t *Tree) AccessRouter(leaf *netsim.Node) *netsim.Node { return t.access[leaf.ID] }

// IsHost reports whether a node is an end host (leaf or server), as
// opposed to a router. Access routers use this to decide that
// back-propagation has reached an attack host.
func (t *Tree) IsHost(n *netsim.Node) bool { return t.hosts[n.ID] }

// LeafHops returns the router-hop distance from a leaf host to the
// server pool gateway (leaf -> access router -> ... -> Root ->
// ServerGW), i.e. the attack-path length back-propagation must cover.
func (t *Tree) LeafHops(leaf *netsim.Node) int {
	return t.Net.PathHops(leaf.ID, t.ServerGW.ID)
}

// NewString builds the validation topology of Sec. 8.2: a chain of
// hops routers with the server pool on one end and a single end host
// (the attacker) on the other:
//
//	server(s) - gw - r1 - r2 - ... - r(hops) - host
//
// The attacker host is hops+1 router hops from the gateway.
func NewString(sim *des.Simulator, hops, servers int, link LinkClass) *Tree {
	if hops < 1 {
		panic("topology: string needs at least one router hop")
	}
	nw := netsim.New(sim)
	t := &Tree{
		Net:    nw,
		access: map[netsim.NodeID]*netsim.Node{},
		depth:  map[netsim.NodeID]int{},
		hosts:  map[netsim.NodeID]bool{},
	}
	t.ServerGW = nw.AddNode("gw")
	t.Routers = append(t.Routers, t.ServerGW)
	for i := 0; i < servers; i++ {
		s := nw.AddNode(fmt.Sprintf("server%d", i))
		nw.Connect(t.ServerGW, s, link.Bandwidth*10, link.Delay/10)
		t.Servers = append(t.Servers, s)
		t.hosts[s.ID] = true
	}
	prev := t.ServerGW
	for i := 0; i < hops; i++ {
		r := nw.AddNode(fmt.Sprintf("r%d", i))
		l := nw.Connect(prev, r, link.Bandwidth, link.Delay)
		if i == 0 {
			t.Bottleneck = l
			t.Root = r
		}
		t.Routers = append(t.Routers, r)
		prev = r
	}
	host := nw.AddNode("host")
	nw.Connect(prev, host, link.Bandwidth, link.Delay)
	t.Leaves = append(t.Leaves, host)
	t.hosts[host.ID] = true
	t.access[host.ID] = prev
	nw.ComputeRoutes()
	return t
}

// NewTree builds a random tree per Params. Construction places each
// leaf by sampling an access depth from HopDist and walking from the
// root, reusing an existing child router with probability Reuse and
// creating a new one otherwise; the leaf then hangs off the depth-d
// router. The realized hop-count and degree histograms are exposed via
// HopCountHistogram and DegreeHistogram for the Fig. 7 regeneration.
func NewTree(sim *des.Simulator, p Params) *Tree {
	if p.Leaves < 1 || p.Servers < 1 {
		panic("topology: need at least one leaf and one server")
	}
	if len(p.HopDist) == 0 {
		panic("topology: empty hop distribution")
	}
	rng := des.NewRNG(p.Seed)
	nw := netsim.New(sim)
	nw.Routing = p.Routing
	t := &Tree{
		Net:    nw,
		access: map[netsim.NodeID]*netsim.Node{},
		depth:  map[netsim.NodeID]int{},
		hosts:  map[netsim.NodeID]bool{},
	}

	t.Root = nw.AddNode("root")
	t.ServerGW = nw.AddNode("server-gw")
	t.Bottleneck = nw.Connect(t.Root, t.ServerGW, p.Bottleneck.Bandwidth, p.Bottleneck.Delay)
	t.Routers = append(t.Routers, t.Root, t.ServerGW)
	t.depth[t.Root.ID] = 0

	for i := 0; i < p.Servers; i++ {
		s := nw.AddNode(fmt.Sprintf("server%d", i))
		nw.Connect(t.ServerGW, s, p.ServerLink.Bandwidth, p.ServerLink.Delay)
		t.Servers = append(t.Servers, s)
		t.hosts[s.ID] = true
	}

	// children[r] lists r's downstream interior routers.
	children := map[netsim.NodeID][]*netsim.Node{}
	total := 0.0
	for _, w := range p.HopDist {
		total += w
	}

	sampleDepth := func() int {
		x := rng.Float64() * total
		for i, w := range p.HopDist {
			x -= w
			if x < 0 {
				return p.MinDepth + i
			}
		}
		return p.MinDepth + len(p.HopDist) - 1
	}

	for i := 0; i < p.Leaves; i++ {
		d := sampleDepth()
		cur := t.Root
		for level := 1; level <= d; level++ {
			kids := children[cur.ID]
			atCap := p.MaxChildren > 0 && len(kids) >= p.MaxChildren
			if len(kids) > 0 && (atCap || rng.Float64() < p.Reuse) {
				cur = des.Pick(rng, kids)
				continue
			}
			r := nw.AddNode(fmt.Sprintf("r%d.%d", level, len(t.Routers)))
			nw.Connect(cur, r, p.CoreLink.Bandwidth, p.CoreLink.Delay)
			children[cur.ID] = append(children[cur.ID], r)
			t.Routers = append(t.Routers, r)
			t.depth[r.ID] = level
			cur = r
		}
		leaf := nw.AddNode(fmt.Sprintf("h%d", i))
		nw.Connect(cur, leaf, p.LeafLink.Bandwidth, p.LeafLink.Delay)
		t.Leaves = append(t.Leaves, leaf)
		t.hosts[leaf.ID] = true
		t.access[leaf.ID] = cur
	}
	nw.ComputeRoutes()
	return t
}

// HopCountHistogram returns frequency of leaf hop counts (distance
// from leaf to ServerGW), keyed by hop count — the left panel of
// Fig. 7.
func (t *Tree) HopCountHistogram() map[int]int {
	h := map[int]int{}
	for _, l := range t.Leaves {
		h[t.LeafHops(l)]++
	}
	return h
}

// DegreeHistogram returns frequency of router degrees — the right
// panel of Fig. 7. End hosts are excluded, matching "node degree" of
// the routing tree.
func (t *Tree) DegreeHistogram() map[int]int {
	h := map[int]int{}
	for _, r := range t.Routers {
		h[r.Degree()]++
	}
	return h
}

// HostWeightTable counts, for every router port on a leaf-to-server
// path, the number of end hosts whose traffic toward the servers
// enters through that port. It is keyed by (NodeID, port index)
// rather than port pointer — two small integers — so the table costs
// O(ports) flat slices instead of a pointer-keyed map, and any
// iteration a caller performs over it is index-ordered, never
// map-ordered.
type HostWeightTable struct {
	byNode [][]float64 // indexed by NodeID, then Port.Index
}

// At returns the host weight of a router port (0 when the port is on
// no leaf-to-server path).
func (t *HostWeightTable) At(pt *netsim.Port) float64 {
	id := int(pt.Node().ID)
	if id >= len(t.byNode) || pt.Index() >= len(t.byNode[id]) {
		return 0
	}
	return t.byNode[id][pt.Index()]
}

// add increments the weight of pt, growing rows lazily.
func (t *HostWeightTable) add(pt *netsim.Port) {
	id := int(pt.Node().ID)
	for id >= len(t.byNode) {
		t.byNode = append(t.byNode, nil)
	}
	if t.byNode[id] == nil {
		t.byNode[id] = make([]float64, pt.Node().Degree())
	}
	t.byNode[id][pt.Index()]++
}

// HostWeights returns the per-ingress-port host counts. Level-k-style
// weighted fair sharing (internal/pushback WeightedShares) uses it to
// approximate the per-host fairness plain Pushback lacks.
func (t *Tree) HostWeights() *HostWeightTable {
	w := &HostWeightTable{}
	for _, leaf := range t.Leaves {
		path := t.Net.Path(leaf.ID, t.ServerGW.ID)
		for i := 0; i+1 < len(path); i++ {
			// The port at path[i+1] facing path[i] is the ingress this
			// leaf's server-bound traffic uses.
			in := path[i+1].PortTo(path[i])
			if in != nil {
				w.add(in)
			}
		}
	}
	return w
}

// PartitionAS assigns every router to an autonomous system at ISP
// granularity: the victim's network (Root + ServerGW) is AS 0, and
// each level-1 subtree — everything behind one of Root's child
// routers — is its own AS. Hierarchical deployment studies
// (core.Defense.DeployPerAS) and the paper's per-ISP incentive
// accounting ("it helps ISPs to accurately locate compromised hosts
// on their networks") use this map.
func (t *Tree) PartitionAS() map[netsim.NodeID]int {
	as := map[netsim.NodeID]int{
		t.Root.ID:     0,
		t.ServerGW.ID: 0,
	}
	next := 1
	// Root's children (excluding ServerGW) head the subtree ASes.
	headOf := map[netsim.NodeID]int{}
	for _, pt := range t.Root.Ports() {
		nb := pt.Peer().Node()
		if nb == t.ServerGW || t.IsHost(nb) {
			continue
		}
		headOf[nb.ID] = next
		next++
	}
	for _, r := range t.Routers {
		if _, ok := as[r.ID]; ok {
			continue
		}
		// The level-1 ancestor is the node right after Root on the
		// path from Root to r.
		path := t.Net.Path(t.Root.ID, r.ID)
		if len(path) >= 2 {
			if id, ok := headOf[path[1].ID]; ok {
				as[r.ID] = id
				continue
			}
		}
		as[r.ID] = 0
	}
	return as
}

// Placement selects which leaves are attack hosts (Sec. 8.4.1).
type Placement int

const (
	// Even places attackers uniformly at random over all leaves.
	Even Placement = iota
	// Close places attackers on the leaves nearest the servers.
	Close
	// Far places attackers on the leaves farthest from the servers.
	Far
)

func (p Placement) String() string {
	switch p {
	case Even:
		return "even"
	case Close:
		return "close"
	case Far:
		return "far"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// PlaceAttackers partitions leaves into attackers and clients. It
// returns nAttackers attack hosts chosen per the policy; the remaining
// leaves are the legitimate clients. A deterministic RNG seed makes
// Even placement reproducible.
func (t *Tree) PlaceAttackers(n int, policy Placement, seed int64) (attackers, clients []*netsim.Node) {
	if n < 0 || n > len(t.Leaves) {
		panic(fmt.Sprintf("topology: cannot place %d attackers among %d leaves", n, len(t.Leaves)))
	}
	leaves := make([]*netsim.Node, len(t.Leaves))
	copy(leaves, t.Leaves)
	switch policy {
	case Close, Far:
		sort.SliceStable(leaves, func(i, j int) bool {
			hi, hj := t.LeafHops(leaves[i]), t.LeafHops(leaves[j])
			if hi != hj {
				if policy == Close {
					return hi < hj
				}
				return hi > hj
			}
			return leaves[i].ID < leaves[j].ID
		})
	case Even:
		rng := des.NewRNG(seed)
		rng.Shuffle(len(leaves), func(i, j int) { leaves[i], leaves[j] = leaves[j], leaves[i] })
	default:
		panic("topology: unknown placement")
	}
	return leaves[:n], leaves[n:]
}
