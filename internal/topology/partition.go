package topology

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/netsim"
)

// Partition is a placement-ready decomposition of a Tree into
// subtree-aligned parts. Part 0 is the victim network — Root, ServerGW
// and the server pool — and every other part is a router subtree,
// starting at AS granularity (the level-1 subtrees of PartitionAS) and
// recursively split toward the requested granularity target. Parts are
// a property of the topology and the target alone: placing the same
// partition on a different shard count changes only Assign — never the
// parts, the cut or the lookahead — which is what keeps a sharded
// run's event schedule identical at every shard count.
type Partition struct {
	// Parts is the number of logical parts.
	Parts int
	// PartOf assigns every node (router and host) to a part.
	PartOf map[netsim.NodeID]int
	// Weights is the per-part cost estimate driving placement.
	Weights []float64
	// Assign maps part → shard; filled by Place.
	Assign []int
	// Cut lists the links whose endpoints lie in different parts, in
	// link-creation order — the inter-AS (and, after splitting,
	// intra-AS backbone) core links.
	Cut []*netsim.Link
	// Lookahead is the minimum propagation delay over the cut — the
	// conservative run-ahead bound a sharded run of this partition
	// gets. Zero when the cut is empty (single-part trees).
	Lookahead float64
}

// DefaultPartTarget is the granularity NewShardedTree partitions to.
// It is deliberately a constant rather than the shard count: more
// parts than shards gives the placement freedom to balance, and a
// shard-count-independent partition keeps the cut — and therefore the
// event schedule — bit-identical across shard counts.
const DefaultPartTarget = 32

// Partition decomposes the tree into at least target parts (topology
// permitting). It starts from the AS partition — each level-1 subtree
// a part — and, while short of the target, splits the heaviest part at
// its head router: the head and its directly attached hosts stay, and
// each child subtree becomes a part of its own. The cost model charges
// a part its end-host count plus half its router count: hosts dominate
// event load (every one is a traffic endpoint), routers add queueing
// work roughly proportional to their number.
func (t *Tree) Partition(target int) *Partition {
	if target < 1 {
		panic("topology: need a positive partition target")
	}

	// Rooted router structure: parent/children by BFS from Root over
	// router-to-router links, plus per-router weights (attached hosts
	// weigh 1, the router itself 0.5).
	children := map[netsim.NodeID][]*netsim.Node{}
	parent := map[netsim.NodeID]*netsim.Node{}
	own := map[netsim.NodeID]float64{}
	order := []*netsim.Node{t.Root}
	seen := map[netsim.NodeID]bool{t.Root.ID: true}
	for i := 0; i < len(order); i++ {
		r := order[i]
		own[r.ID] = 0.5
		for _, pt := range r.Ports() {
			nb := pt.Far().Node()
			if t.IsHost(nb) {
				own[r.ID]++
				continue
			}
			if seen[nb.ID] {
				continue
			}
			seen[nb.ID] = true
			parent[nb.ID] = r
			children[r.ID] = append(children[r.ID], nb)
			order = append(order, nb)
		}
	}
	subtree := map[netsim.NodeID]float64{}
	for i := len(order) - 1; i >= 0; i-- {
		r := order[i]
		w := own[r.ID]
		for _, c := range children[r.ID] {
			w += subtree[c.ID]
		}
		subtree[r.ID] = w
	}

	// parts[i] is the head router of part i. A split part keeps only
	// its head (and the head's hosts); each child subtree becomes a new
	// part, appended in child order so part numbering is deterministic.
	type partState struct {
		head   *netsim.Node
		weight float64
		split  bool
	}
	newPart := func(head *netsim.Node) partState {
		return partState{head: head, weight: subtree[head.ID]}
	}
	parts := []partState{{head: t.Root, split: true, weight: own[t.Root.ID]}}
	for _, c := range children[t.Root.ID] {
		if c == t.ServerGW {
			parts[0].weight += subtree[c.ID]
			continue
		}
		parts = append(parts, newPart(c))
	}
	splittable := func(p partState) bool {
		return !p.split && len(children[p.head.ID]) > 0
	}
	for len(parts) < target {
		best := -1
		for i, p := range parts {
			if splittable(p) && (best < 0 || p.weight > parts[best].weight) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		for _, c := range children[parts[best].head.ID] {
			parts = append(parts, newPart(c))
		}
		parts[best].weight = own[parts[best].head.ID]
		parts[best].split = true
	}

	p := &Partition{
		Parts:   len(parts),
		PartOf:  make(map[netsim.NodeID]int, len(t.Net.Nodes())),
		Weights: make([]float64, len(parts)),
	}
	headPart := map[netsim.NodeID]int{}
	for i, ps := range parts {
		headPart[ps.head.ID] = i
		p.Weights[i] = ps.weight
	}
	headPart[t.ServerGW.ID] = 0
	// Routers inherit the part of their nearest head ancestor; BFS
	// order visits parents first, so the parent's part is always
	// resolved before its children ask for it.
	for _, r := range order {
		if part, ok := headPart[r.ID]; ok {
			p.PartOf[r.ID] = part
			continue
		}
		p.PartOf[r.ID] = p.PartOf[parent[r.ID].ID]
	}
	for _, s := range t.Servers {
		p.PartOf[s.ID] = 0
	}
	for _, leaf := range t.Leaves {
		acc := t.AccessRouter(leaf)
		if acc == nil {
			panic(fmt.Sprintf("topology: leaf %v has no access router", leaf))
		}
		p.PartOf[leaf.ID] = p.PartOf[acc.ID]
	}

	for _, l := range t.Net.Links() {
		a, b := l.A().Node(), l.B().Node()
		if p.PartOf[a.ID] != p.PartOf[b.ID] {
			p.Cut = append(p.Cut, l)
			if p.Lookahead == 0 || l.Delay < p.Lookahead {
				p.Lookahead = l.Delay
			}
		}
	}
	return p
}

// Place assigns parts to shards with longest-processing-time greedy
// order and records the result in Assign: heaviest part first onto the
// least-loaded shard, ties toward lower part and shard indices, so the
// heaviest shard exceeds the mean load by at most one part's weight.
func (p *Partition) Place(shards int) []int {
	if shards < 1 {
		panic("topology: need at least one shard")
	}
	order := make([]int, p.Parts)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return p.Weights[order[i]] > p.Weights[order[j]]
	})
	load := make([]float64, shards)
	p.Assign = make([]int, p.Parts)
	for _, part := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		p.Assign[part] = best
		load[best] += p.Weights[part]
	}
	return p.Assign
}

// ShardedTree is a Tree rebuilt on a Cluster: same nodes, same links,
// same IDs, with each AS-aligned part placed on a shard of the given
// sharded simulator and the cut links routed through channels.
type ShardedTree struct {
	Cluster *netsim.Cluster
	Part    *Partition

	Root, ServerGW *netsim.Node
	Servers        []*netsim.Node
	Leaves         []*netsim.Node
	Routers        []*netsim.Node
	Bottleneck     *netsim.Link

	access map[netsim.NodeID]*netsim.Node
	hosts  map[netsim.NodeID]bool
}

// NewShardedTree builds the Params tree for a sharded run: the
// reference tree is generated on a scratch simulator (identical RNG
// draws, so node IDs, names and link order match a sequential NewTree
// exactly), partitioned, and replayed node-by-node and link-by-link
// onto a Cluster over the simulator's shards. Replaying in creation
// order makes channel creation order — the cross-part delivery
// tie-break — independent of the shard count.
func NewShardedTree(ss *des.ShardedSimulator, p Params) *ShardedTree {
	ref := NewTree(des.New(), p)
	part := ref.Partition(DefaultPartTarget)
	part.Place(ss.Shards())
	cl := netsim.NewCluster(ss, part.Assign)
	for _, n := range ref.Net.Nodes() {
		cl.AddNode(part.PartOf[n.ID], n.Name)
	}
	for _, l := range ref.Net.Links() {
		cl.Connect(cl.Node(l.A().Node().ID), cl.Node(l.B().Node().ID), l.Bandwidth, l.Delay)
	}
	cl.ComputeRoutes()

	st := &ShardedTree{
		Cluster: cl,
		Part:    part,
		access:  make(map[netsim.NodeID]*netsim.Node, len(ref.access)),
		hosts:   make(map[netsim.NodeID]bool, len(ref.hosts)),
	}
	st.Root = cl.Node(ref.Root.ID)
	st.ServerGW = cl.Node(ref.ServerGW.ID)
	st.Bottleneck = st.Root.PortTo(st.ServerGW).Link()
	remap := func(ns []*netsim.Node) []*netsim.Node {
		out := make([]*netsim.Node, len(ns))
		for i, n := range ns {
			out[i] = cl.Node(n.ID)
		}
		return out
	}
	st.Servers = remap(ref.Servers)
	st.Leaves = remap(ref.Leaves)
	st.Routers = remap(ref.Routers)
	for _, leaf := range ref.Leaves {
		st.access[leaf.ID] = cl.Node(ref.AccessRouter(leaf).ID)
		st.hosts[leaf.ID] = true
	}
	for _, s := range ref.Servers {
		st.hosts[s.ID] = true
	}
	return st
}

// GrowTree replays a whole Params tree into one part of a cluster —
// the building block of forest workloads, where each part hosts an
// independent tree and only deliberately added links (sinks, ring
// links) cross part boundaries. The reference tree is generated on a
// scratch simulator so RNG draws, node order and link order are
// exactly those of a sequential NewTree; node IDs are remapped to the
// cluster-global space. The caller is responsible for route
// computation (Cluster.ComputeRoutes, after all parts and cross links
// exist).
func GrowTree(cl *netsim.Cluster, part int, p Params) *Tree {
	ref := NewTree(des.New(), p)
	remap := make(map[netsim.NodeID]*netsim.Node, len(ref.Net.Nodes()))
	for _, n := range ref.Net.Nodes() {
		remap[n.ID] = cl.AddNode(part, n.Name)
	}
	for _, l := range ref.Net.Links() {
		cl.Connect(remap[l.A().Node().ID], remap[l.B().Node().ID], l.Bandwidth, l.Delay)
	}
	t := &Tree{
		Net:      cl.Part(part),
		Root:     remap[ref.Root.ID],
		ServerGW: remap[ref.ServerGW.ID],
		access:   make(map[netsim.NodeID]*netsim.Node, len(ref.access)),
		depth:    make(map[netsim.NodeID]int, len(ref.depth)),
		hosts:    make(map[netsim.NodeID]bool, len(ref.hosts)),
	}
	t.Bottleneck = t.Root.PortTo(t.ServerGW).Link()
	remapAll := func(ns []*netsim.Node) []*netsim.Node {
		out := make([]*netsim.Node, len(ns))
		for i, n := range ns {
			out[i] = remap[n.ID]
		}
		return out
	}
	t.Servers = remapAll(ref.Servers)
	t.Leaves = remapAll(ref.Leaves)
	t.Routers = remapAll(ref.Routers)
	for _, leaf := range ref.Leaves {
		t.access[remap[leaf.ID].ID] = remap[ref.AccessRouter(leaf).ID]
		t.hosts[remap[leaf.ID].ID] = true
	}
	for _, s := range ref.Servers {
		t.hosts[remap[s.ID].ID] = true
	}
	for _, r := range ref.Routers {
		if d, ok := ref.depth[r.ID]; ok {
			t.depth[remap[r.ID].ID] = d
		}
	}
	return t
}

// AccessRouter returns the first-hop router of an end host.
func (st *ShardedTree) AccessRouter(leaf *netsim.Node) *netsim.Node { return st.access[leaf.ID] }

// IsHost reports whether a node is an end host (leaf or server).
func (st *ShardedTree) IsHost(n *netsim.Node) bool { return st.hosts[n.ID] }

// LeafHops returns the router-hop distance from a leaf to ServerGW
// across the cluster.
func (st *ShardedTree) LeafHops(leaf *netsim.Node) int {
	return st.Cluster.PathHops(leaf.ID, st.ServerGW.ID)
}
