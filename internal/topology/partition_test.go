package topology

import (
	"testing"

	"repro/internal/des"
)

func minimalParams() Params {
	p := DefaultParams()
	p.Leaves = 1
	p.Servers = 1
	p.HopDist = []float64{1}
	return p
}

// TestPartitionBalancedPaperTree checks the LPT placement on a
// 1000-leaf paper tree: all nodes assigned, and no shard loaded more
// than the greedy bound (mean plus one part's weight) above the rest.
func TestPartitionBalancedPaperTree(t *testing.T) {
	p := DefaultParams()
	p.Leaves = 1000
	tr := NewTree(des.New(), p)
	const shards = 8
	pr := tr.Partition(DefaultPartTarget)
	pr.Place(shards)

	if len(pr.PartOf) != len(tr.Net.Nodes()) {
		t.Fatalf("assigned %d of %d nodes", len(pr.PartOf), len(tr.Net.Nodes()))
	}
	if pr.Parts <= shards {
		t.Fatalf("only %d parts for %d shards — placement has no freedom", pr.Parts, shards)
	}
	var total, maxPart float64
	for part, w := range pr.Weights {
		if w <= 0 {
			t.Fatalf("part %d has weight %v", part, w)
		}
		total += w
		if w > maxPart {
			maxPart = w
		}
	}
	load := make([]float64, shards)
	for part, shard := range pr.Assign {
		if shard < 0 || shard >= shards {
			t.Fatalf("part %d assigned to shard %d", part, shard)
		}
		load[shard] += pr.Weights[part]
	}
	mean := total / shards
	for shard, l := range load {
		if l > mean+maxPart {
			t.Fatalf("shard %d load %.1f exceeds LPT bound %.1f (mean %.1f + heaviest part %.1f)", shard, l, mean+maxPart, mean, maxPart)
		}
	}
}

// TestPartitionDegenerate covers the smallest constructible tree and
// more shards than parts.
func TestPartitionDegenerate(t *testing.T) {
	tr := NewTree(des.New(), minimalParams())
	pr := tr.Partition(DefaultPartTarget)
	if pr.Parts != 2 {
		t.Fatalf("minimal tree has %d parts, want 2 (victim network + one subtree)", pr.Parts)
	}
	// More shards than the topology has parts: placement must still be
	// valid, with the surplus shards simply left idle.
	for part, shard := range pr.Place(8) {
		if shard < 0 || shard >= 8 {
			t.Fatalf("part %d assigned to shard %d", part, shard)
		}
	}
	if len(pr.Cut) != 1 {
		t.Fatalf("minimal tree has %d cut links, want 1", len(pr.Cut))
	}

	for part, shard := range pr.Place(1) {
		if shard != 0 {
			t.Fatalf("part %d assigned to shard %d with a single shard", part, shard)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Partition(0) did not panic")
		}
	}()
	tr.Partition(0)
}

// TestPartitionStableAcrossShardCounts pins that parts and cut are a
// property of the topology and the granularity target: re-partitioning
// and re-placing on different shard counts changes only Assign.
func TestPartitionStableAcrossShardCounts(t *testing.T) {
	tr := NewTree(des.New(), DefaultParams())
	a, b := tr.Partition(DefaultPartTarget), tr.Partition(DefaultPartTarget)
	a.Place(1)
	b.Place(8)
	if a.Parts != b.Parts || len(a.Cut) != len(b.Cut) || a.Lookahead != b.Lookahead {
		t.Fatalf("partition structure changed with shard count: %d/%d parts, %d/%d cuts", a.Parts, b.Parts, len(a.Cut), len(b.Cut))
	}
	for id, part := range a.PartOf {
		if b.PartOf[id] != part {
			t.Fatalf("node %d moved from part %d to %d with shard count", id, part, b.PartOf[id])
		}
	}
}

// TestPartitionCutDelaysRespectLookahead is the conservative-sync
// safety property: every cross-part link's delay is at least the
// declared lookahead, over a spread of topology seeds.
func TestPartitionCutDelaysRespectLookahead(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := DefaultParams()
		p.Seed = seed
		tr := NewTree(des.New(), p)
		pr := tr.Partition(DefaultPartTarget)
		if pr.Lookahead <= 0 {
			t.Fatalf("seed %d: non-positive lookahead %v", seed, pr.Lookahead)
		}
		inCut := 0
		for _, l := range tr.Net.Links() {
			crosses := pr.PartOf[l.A().Node().ID] != pr.PartOf[l.B().Node().ID]
			if crosses {
				inCut++
				if l.Delay < pr.Lookahead {
					t.Fatalf("seed %d: cut link %v delay %v below lookahead %v", seed, l, l.Delay, pr.Lookahead)
				}
			}
		}
		if inCut != len(pr.Cut) {
			t.Fatalf("seed %d: %d links cross parts but Cut lists %d", seed, inCut, len(pr.Cut))
		}
	}
}

// TestShardedTreeMatchesReference checks the cluster replay: identical
// node population, identical leaf-to-gateway distances, and exactly
// the partition's cut links crossing part networks.
func TestShardedTreeMatchesReference(t *testing.T) {
	p := DefaultParams()
	ref := NewTree(des.New(), p)
	ss := des.NewSharded(p.Seed, 4)
	st := NewShardedTree(ss, p)

	if got, want := len(st.Cluster.Nodes()), len(ref.Net.Nodes()); got != want {
		t.Fatalf("cluster has %d nodes, reference %d", got, want)
	}
	if st.Bottleneck.Bandwidth != ref.Bottleneck.Bandwidth || st.Bottleneck.Delay != ref.Bottleneck.Delay {
		t.Fatal("bottleneck link parameters diverged")
	}
	for i, leaf := range st.Leaves {
		want := ref.LeafHops(ref.Leaves[i])
		if got := st.LeafHops(leaf); got != want {
			t.Fatalf("leaf %d: %d hops across cluster, %d in reference", i, got, want)
		}
	}
	crossPorts := 0
	for _, n := range st.Cluster.Nodes() {
		for _, pt := range n.Ports() {
			if pt.Peer() == nil {
				crossPorts++
			}
		}
	}
	if crossPorts != 2*len(st.Part.Cut) {
		t.Fatalf("%d cross-part egress ports, want 2 per cut link (%d cuts)", crossPorts, len(st.Part.Cut))
	}
}
