package des_test

import (
	"fmt"

	"repro/internal/des"
)

// A tiny simulation: two timers and a periodic tick.
func ExampleSimulator() {
	sim := des.New()
	sim.At(1.5, func() { fmt.Println("event at", sim.Now()) })
	sim.After(0.5, func() { fmt.Println("event at", sim.Now()) })
	stop := sim.Every(1, 2, func() { fmt.Println("tick at", sim.Now()) })
	sim.At(4, func() { stop(); fmt.Println("stopped at", sim.Now()) })
	if err := sim.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// event at 0.5
	// tick at 1
	// event at 1.5
	// tick at 3
	// stopped at 4
}

// Simultaneous events fire in scheduling order, which keeps runs
// reproducible.
func ExampleSimulator_RunUntil() {
	sim := des.New()
	for i := 1; i <= 3; i++ {
		i := i
		sim.At(2, func() { fmt.Println("simultaneous", i) })
	}
	if err := sim.RunUntil(10); err != nil {
		fmt.Println("error:", err)
	}
	fmt.Println("clock:", sim.Now())
	// Output:
	// simultaneous 1
	// simultaneous 2
	// simultaneous 3
	// clock: 10
}
