// Sharded parallel simulation: a ShardedSimulator owns K ordinary
// Simulators (one per shard, each with its private slab, heap and
// clock) and drives them in conservative lookahead windows à la
// Chandy–Misra–Bryant.
//
// # Synchronization model
//
// Shards couple only through Channels. A Channel is a unidirectional
// cut edge with a declared lookahead L > 0: every send through it must
// carry a delay ≥ L. The coordinator repeatedly computes
//
//	T = min over shards of the next pending event time
//	W = T + Lmin          (Lmin = min channel lookahead)
//
// and lets every shard dispatch its events with time < W concurrently.
// Any message sent during such a window leaves from an event at time
// u ≥ T with delay ≥ its channel's lookahead ≥ Lmin, so it arrives at
// t = u + delay ≥ W — strictly after everything the window executes.
// Messages buffer in per-channel outboxes (written only by the owning
// source shard) and are injected into destination heaps at the next
// barrier, which is why no shard can ever observe an event out of
// timestamp order.
//
// # Determinism
//
// For a fixed seed the run is bit-identical on logical time for every
// shard count, provided the model couples its parts only through
// Channels. Two ingredients make that hold:
//
//   - Delivery keys are partition-independent. A delivery is ordered
//     by (time, channel id, channel sequence); channel ids are
//     assigned in creation order, which a deterministic topology
//     builder reproduces identically at any shard count, and the
//     channel sequence counts sends in source-model order. No key ever
//     mentions a shard index or a per-shard counter.
//   - The per-shard heap comparator (see lessRec) orders simultaneous
//     events by class then key, so an injected delivery sorts the same
//     whether it was buffered across a real shard boundary or looped
//     through a same-shard channel.
//
// Model state must stay shard-local: an event handler may touch only
// state owned by its shard and send through Channels. The hbplint
// determinism analyzer enforces the complementary rule that simulation
// code never reaches for raw goroutine channels.
package des

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// message is one buffered cross-shard send.
type message struct {
	time float64
	key  uint64
	fn   TypedFunc
	a, b any
	kind uint8
}

// Channel is a unidirectional cross-shard edge with conservative
// lookahead. Create one per cut-edge direction at topology-build time
// (creation order defines the delivery tie-break, so build order must
// be deterministic and shard-count-independent). Only code running on
// the source shard may Send.
type Channel struct {
	ss        *ShardedSimulator
	id        uint32
	src, dst  int
	lookahead float64
	seq       uint32
	queue     []message
}

// Lookahead returns the channel's declared minimum delay.
func (c *Channel) Lookahead() float64 { return c.lookahead }

// Src and Dst return the endpoint shard indices.
func (c *Channel) Src() int { return c.src }

// Dst returns the destination shard index.
func (c *Channel) Dst() int { return c.dst }

// Send buffers the typed event fn(a, b, kind) for delivery on the
// destination shard at the source shard's now + delay. delay must be
// at least the channel's lookahead — that slack is exactly what lets
// the destination shard run ahead concurrently — and fn must be
// non-nil. The event is injected at the next window barrier with a
// partition-independent ordering key, so the resulting schedule is
// identical at every shard count.
func (c *Channel) Send(delay float64, fn TypedFunc, a, b any, kind uint8) {
	if fn == nil {
		panic("des: nil typed handler")
	}
	if delay < c.lookahead {
		panic(fmt.Sprintf("des: cross-shard send delay %.9g below channel lookahead %.9g", delay, c.lookahead))
	}
	src := c.ss.shards[c.src]
	c.seq++
	//hbplint:ignore hotalloc amortized outbox growth: the queue is reused across windows (reset to len 0 at each barrier), so capacity reaches the per-window peak and stays.
	c.queue = append(c.queue, message{
		time: src.now + delay,
		key:  uint64(c.id)<<32 | uint64(c.seq),
		fn:   fn, a: a, b: b, kind: kind,
	})
}

// ShardedSimulator drives K per-shard Simulators in conservative
// lookahead windows. It mirrors the single Simulator's driver surface
// (Run/RunUntil, Stop, SetInterrupt, EventLimit, Reset, DrainPending,
// Now/Fired/Pending); model code schedules on its own shard's
// Simulator exactly as before. With one shard and no channels it
// degenerates to the ordinary sequential engine.
type ShardedSimulator struct {
	seed   int64
	shards []*Simulator
	rngs   []*RNG
	chans  []*Channel
	// lookahead caches the minimum channel lookahead (+Inf with no
	// channels, in which case the first window runs to the horizon).
	lookahead float64

	// EventLimit, when non-zero, bounds the total events fired across
	// all shards. The check is exact at window barriers; within one
	// window each shard stops after at most the remaining budget, so
	// the overshoot before the abort is bounded by one window per
	// shard. With the whole model on one shard it is exact, matching
	// the sequential engine.
	EventLimit uint64

	interrupt func() error
	stopflag  atomic.Bool
}

// NewSharded returns a sharded simulator with n empty shards. Shard
// RNG streams derive from seed via ShardSeed.
func NewSharded(seed int64, n int) *ShardedSimulator {
	if n < 1 {
		panic("des: need at least one shard")
	}
	ss := &ShardedSimulator{seed: seed, lookahead: math.Inf(1)}
	ss.shards = make([]*Simulator, n)
	ss.rngs = make([]*RNG, n)
	for i := range ss.shards {
		ss.shards[i] = New()
		ss.rngs[i] = NewRNG(ShardSeed(seed, i))
	}
	return ss
}

// ShardSeed derives shard i's RNG seed from the scenario seed with the
// splitmix mixing of DeriveSeed. It is a pure function of (seed, i) —
// stable across partitionings and shard counts.
func ShardSeed(seed int64, shard int) int64 {
	return DeriveSeed(seed, int64(shard)+1)
}

// Shards returns the shard count.
func (ss *ShardedSimulator) Shards() int { return len(ss.shards) }

// Shard returns shard i's Simulator. Model components belonging to
// shard i bind to it exactly as they would to a standalone Simulator.
func (ss *ShardedSimulator) Shard(i int) *Simulator { return ss.shards[i] }

// ShardRNG returns shard i's private RNG stream. Note that streams
// keyed by shard index move with repartitioning; model code that needs
// placement-independent draws should derive its own streams from
// stable model labels with DeriveSeed.
func (ss *ShardedSimulator) ShardRNG(i int) *RNG { return ss.rngs[i] }

// NewChannel creates the cross-shard edge src→dst with the given
// lookahead (must be positive: a zero-lookahead cut would collapse the
// conservative window to nothing). src may equal dst: a model cut
// along logical part boundaries keeps its cut edges channel-routed
// even when both parts land on the same shard, which is what keeps
// event order identical across shard counts.
func (ss *ShardedSimulator) NewChannel(src, dst int, lookahead float64) *Channel {
	if src < 0 || src >= len(ss.shards) || dst < 0 || dst >= len(ss.shards) {
		panic("des: channel endpoint out of range")
	}
	if !(lookahead > 0) || math.IsInf(lookahead, 0) || math.IsNaN(lookahead) {
		panic(fmt.Sprintf("des: channel lookahead must be positive and finite, got %v", lookahead))
	}
	c := &Channel{ss: ss, id: uint32(len(ss.chans)), src: src, dst: dst, lookahead: lookahead}
	ss.chans = append(ss.chans, c)
	if lookahead < ss.lookahead {
		ss.lookahead = lookahead
	}
	return c
}

// Now returns the completed simulation horizon: the minimum shard
// clock. After RunUntil(end) returns nil every shard clock reads end.
func (ss *ShardedSimulator) Now() float64 {
	t := math.Inf(1)
	for _, s := range ss.shards {
		if s.now < t {
			t = s.now
		}
	}
	return t
}

// Fired returns the total events dispatched across all shards.
func (ss *ShardedSimulator) Fired() uint64 {
	var n uint64
	for _, s := range ss.shards {
		n += s.fired
	}
	return n
}

// Pending returns live queued events across all shards plus buffered,
// not yet injected channel messages.
func (ss *ShardedSimulator) Pending() int {
	n := 0
	for _, s := range ss.shards {
		n += s.Pending()
	}
	for _, c := range ss.chans {
		n += len(c.queue)
	}
	return n
}

// Stop makes the run return at the next window barrier. It is safe to
// call from any shard's event handler (or from outside the run); model
// code wanting the sequential engine's stop-after-current-event
// behavior on its own shard can call its shard Simulator's Stop, which
// additionally ends that shard's current window immediately.
func (ss *ShardedSimulator) Stop() { ss.stopflag.Store(true) }

// SetInterrupt installs a cooperative cancellation checkpoint polled
// once per window barrier (the `every` cadence of the sequential
// engine does not apply — barriers are the natural safe points). Pass
// nil to remove it.
func (ss *ShardedSimulator) SetInterrupt(every uint64, check func() error) {
	_ = every
	ss.interrupt = check
}

// At, AtNamed, After, AfterNamed, ScheduleTyped and Every delegate to
// shard 0, making the ShardedSimulator a drop-in Simulator surface for
// drivers that schedule global control actions (attack start/stop,
// shutdown). Anything placed on other shards schedules via Shard(i).

// At schedules h on shard 0 at absolute time t.
func (ss *ShardedSimulator) At(t float64, h Handler) Event { return ss.shards[0].At(t, h) }

// AtNamed is At with a debug label.
func (ss *ShardedSimulator) AtNamed(t float64, name string, h Handler) Event {
	return ss.shards[0].AtNamed(t, name, h)
}

// After schedules h on shard 0 at shard 0's now + d.
func (ss *ShardedSimulator) After(d float64, h Handler) Event { return ss.shards[0].After(d, h) }

// AfterNamed is After with a debug label.
func (ss *ShardedSimulator) AfterNamed(d float64, name string, h Handler) Event {
	return ss.shards[0].AfterNamed(d, name, h)
}

// ScheduleTyped schedules a typed event on shard 0.
func (ss *ShardedSimulator) ScheduleTyped(t float64, fn TypedFunc, a, b any, kind uint8) Event {
	return ss.shards[0].ScheduleTyped(t, fn, a, b, kind)
}

// Every schedules a periodic handler on shard 0.
func (ss *ShardedSimulator) Every(start, period float64, h Handler) (stop func()) {
	return ss.shards[0].Every(start, period, h)
}

// Run dispatches until every shard is idle, Stop is called, or the
// event limit is hit.
func (ss *ShardedSimulator) Run() error { return ss.RunUntil(math.Inf(1)) }

// RunUntil dispatches events with time <= end across all shards in
// conservative windows, then advances every shard clock to end. The
// result — which events fire, at what logical times, in what
// causality-relevant order — is bit-identical for any shard count.
func (ss *ShardedSimulator) RunUntil(end float64) error {
	ss.stopflag.Store(false)
	for _, s := range ss.shards {
		s.stopped = false
	}
	for {
		if ss.interrupt != nil {
			if err := ss.interrupt(); err != nil {
				return err
			}
		}
		// Inject buffered channel messages (including any sent during
		// setup, before the run) so window sizing sees them as pending
		// events.
		ss.inject()
		stopped := ss.stopflag.Load()
		for _, s := range ss.shards {
			stopped = stopped || s.stopped
		}
		if stopped {
			break
		}
		if ss.EventLimit > 0 {
			fired := ss.Fired()
			if fired >= ss.EventLimit {
				return ErrEventLimit
			}
			remaining := ss.EventLimit - fired
			for _, s := range ss.shards {
				s.EventLimit = s.fired + remaining
			}
		}
		t := math.Inf(1)
		for _, s := range ss.shards {
			if nt, ok := s.nextEventTime(); ok && nt < t {
				t = nt
			}
		}
		if math.IsInf(t, 1) || t > end {
			break
		}
		bound, inclusive := t+ss.lookahead, false
		if bound > end || math.IsInf(bound, 1) {
			bound, inclusive = end, true
		}
		if err := ss.runWindows(bound, inclusive); err != nil {
			return err
		}
	}
	if !math.IsInf(end, 1) {
		for _, s := range ss.shards {
			if end > s.now {
				s.now = end
			}
		}
	}
	return nil
}

// inject drains every channel outbox into the destination shard's
// heap, in channel-creation order. Order here is immaterial for the
// schedule — the heap comparator orders deliveries by their
// partition-independent keys — but iterating a slice keeps the
// injection itself deterministic and allocation-free.
func (ss *ShardedSimulator) inject() {
	for _, c := range ss.chans {
		if len(c.queue) == 0 {
			continue
		}
		dst := ss.shards[c.dst]
		for i := range c.queue {
			m := &c.queue[i]
			dst.scheduleMsg(m.time, m.fn, m.a, m.b, m.kind, m.key)
			*m = message{}
		}
		c.queue = c.queue[:0]
	}
}

// runWindows executes one conservative window on every shard that has
// work before the bound. Windows run concurrently on goroutines —
// shards share no state and channel outboxes are single-writer, so the
// only synchronization needed is the barrier itself — except that a
// lone runnable shard executes inline. Errors surface in shard order.
func (ss *ShardedSimulator) runWindows(bound float64, inclusive bool) error {
	var runnable []int
	for i, s := range ss.shards {
		if nt, ok := s.nextEventTime(); ok && (nt < bound || (inclusive && nt == bound)) {
			runnable = append(runnable, i)
		}
	}
	if len(runnable) == 1 {
		return ss.shards[runnable[0]].runWindow(bound, inclusive)
	}
	errs := make([]error, len(runnable))
	var wg sync.WaitGroup
	for j, i := range runnable {
		wg.Add(1)
		s := ss.shards[i]
		slot := &errs[j]
		//hbplint:ignore determinism conservative-window parallelism: each worker runs one shard's private heap between barriers, shards share no state, and the barrier merge orders cross-shard deliveries by partition-independent keys.
		go func() {
			defer wg.Done()
			*slot = s.runWindow(bound, inclusive)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DrainPending drains every shard's pending events in shard order,
// then every buffered channel message in channel order, passing each
// to visit. Like the sequential DrainPending this is the teardown path
// that lets owners reclaim resources (pooled packets on in-flight
// events or in cut-edge transit) before leak-checking.
func (ss *ShardedSimulator) DrainPending(visit func(DrainedEvent)) {
	for _, s := range ss.shards {
		s.DrainPending(visit)
	}
	ss.DrainMessages(visit)
}

// DrainMessages drains only the buffered, not yet injected channel
// messages. Network teardown uses it after per-shard drains: a message
// in cut-edge transit carries resources whose ownership already left
// the source shard.
func (ss *ShardedSimulator) DrainMessages(visit func(DrainedEvent)) {
	for _, c := range ss.chans {
		for i := range c.queue {
			m := &c.queue[i]
			if visit != nil {
				visit(DrainedEvent{Time: m.time, Fn: m.fn, A: m.a, B: m.b, Kind: m.kind})
			}
			*m = message{}
		}
		c.queue = c.queue[:0]
	}
}

// Reset rewinds every shard (clearing their interrupt hooks, per the
// Simulator.Reset contract), discards buffered messages, zeroes
// channel sequences and removes the coordinator's interrupt hook.
// EventLimit is preserved as configuration. Like the sequential Reset
// it drops payload references without visiting them — DrainPending
// first when events may hold pooled resources.
func (ss *ShardedSimulator) Reset() {
	for _, s := range ss.shards {
		s.Reset()
	}
	for _, c := range ss.chans {
		for i := range c.queue {
			c.queue[i] = message{}
		}
		c.queue = c.queue[:0]
		c.seq = 0
	}
	ss.interrupt = nil
	ss.stopflag.Store(false)
}
