package des

import (
	"errors"
	"fmt"
	"testing"
)

func TestInterruptStopsRun(t *testing.T) {
	sim := New()
	stop := errors.New("cancelled")
	fired := 0
	var schedule func()
	schedule = func() {
		fired++
		sim.After(1, schedule)
	}
	sim.After(1, schedule)
	polls := 0
	sim.SetInterrupt(8, func() error {
		polls++
		if fired >= 20 {
			return stop
		}
		return nil
	})
	err := sim.Run()
	if !errors.Is(err, stop) {
		t.Fatalf("Run returned %v, want the interrupt error", err)
	}
	if polls == 0 {
		t.Fatal("interrupt never polled")
	}
	// Polled once per batch of 8, not once per event.
	if polls > fired/8+2 {
		t.Fatalf("polled %d times over %d events with batch 8", polls, fired)
	}
	// The self-rescheduling chain means exactly one event is pending:
	// an interrupted run keeps its queue intact.
	if sim.Pending() != 1 {
		t.Fatalf("pending = %d after interrupt, want 1", sim.Pending())
	}
}

func TestInterruptDoesNotPerturbRun(t *testing.T) {
	trace := func(check func() error) string {
		sim := New()
		var log string
		for i := 0; i < 50; i++ {
			i := i
			sim.At(float64(i%7)+1, func() { log += fmt.Sprintf("%d@%.0f ", i, sim.Now()) })
		}
		if check != nil {
			sim.SetInterrupt(4, check)
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	plain := trace(nil)
	checked := trace(func() error { return nil })
	if plain != checked {
		t.Fatalf("interrupt checkpoint changed the event stream:\n%s\n%s", plain, checked)
	}
}

func TestInterruptAlreadyCancelled(t *testing.T) {
	sim := New()
	stop := errors.New("cancelled before start")
	fired := false
	sim.At(1, func() { fired = true })
	sim.SetInterrupt(0, func() error { return stop })
	if err := sim.Run(); !errors.Is(err, stop) {
		t.Fatalf("Run returned %v, want immediate interrupt", err)
	}
	if fired {
		t.Fatal("event fired despite pre-cancelled interrupt")
	}
	if sim.Pending() != 1 {
		t.Fatalf("pending = %d, want the untouched event", sim.Pending())
	}
	// Removing the checkpoint lets the run resume and finish.
	sim.SetInterrupt(0, nil)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event did not fire after interrupt removed")
	}
}

func TestDrainPending(t *testing.T) {
	sim := New()
	type op struct{ a, b int }
	x, y := &op{1, 2}, &op{3, 4}
	sim.At(5, func() {})
	sim.ScheduleTyped(2, func(a, b any, kind uint8) { t.Fatal("typed event fired during drain") }, x, y, 7)
	e := sim.AtNamed(9, "late", func() {})
	if err := sim.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	var drained []DrainedEvent
	sim.DrainPending(func(ev DrainedEvent) { drained = append(drained, ev) })
	if sim.Pending() != 0 {
		t.Fatalf("pending = %d after drain", sim.Pending())
	}
	if len(drained) != 3 {
		t.Fatalf("drained %d events, want 3", len(drained))
	}
	// (time, seq) order and field fidelity.
	if drained[0].Time != 2 || drained[0].Fn == nil || drained[0].A != any(x) || drained[0].B != any(y) || drained[0].Kind != 7 {
		t.Fatalf("typed drain record wrong: %+v", drained[0])
	}
	if drained[1].Time != 5 || drained[1].Handler == nil {
		t.Fatalf("closure drain record wrong: %+v", drained[1])
	}
	if drained[2].Time != 9 || drained[2].Name != "late" {
		t.Fatalf("named drain record wrong: %+v", drained[2])
	}
	// Clock and fired counter survive; stale handles are inert.
	if sim.Now() != 1 {
		t.Fatalf("drain moved the clock to %v", sim.Now())
	}
	if e.Pending() {
		t.Fatal("drained event still pending via handle")
	}
	e.Cancel() // no-op, must not panic
	// The simulator remains usable.
	ran := false
	sim.At(10, func() { ran = true })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("post-drain event did not fire")
	}
}

func TestDrainPendingNilVisitor(t *testing.T) {
	sim := New()
	sim.At(1, func() {})
	sim.At(2, func() {})
	sim.DrainPending(nil)
	if sim.Pending() != 0 {
		t.Fatalf("pending = %d after nil-visitor drain", sim.Pending())
	}
}
