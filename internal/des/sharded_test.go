package des

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

// ringCell is one logical model part of the synthetic sharded
// workload: it ticks locally, mutates private state, and forwards
// messages to the next cell over a Channel. Cells derive their RNG
// streams from stable cell labels, so a cell's behavior is a pure
// function of the scenario seed — never of where it is placed.
type ringCell struct {
	sim   *Simulator
	rng   *RNG
	out   *Channel
	next  *ringCell
	id    int
	trace []string
}

const ringLookahead = 0.01

// ringMsg crosses cell boundaries. A fresh value is sent every time:
// payloads cross shards as shared references, so they must not be
// mutated by the sender afterwards.
type ringMsg struct{ depth int }

func (c *ringCell) record(tag string, depth int) {
	c.trace = append(c.trace, fmt.Sprintf("%.9f/%s%d", c.sim.Now(), tag, depth))
}

func (c *ringCell) tick(depth int) {
	c.record("t", depth)
	if depth >= 5 {
		return
	}
	// Quantized delays force timestamp ties between local events and
	// channel deliveries — exactly the collisions whose ordering the
	// partition-independent keys must pin down.
	for i := 0; i < 2; i++ {
		d := depth + 1
		c.sim.After(0.005*float64(1+c.rng.Intn(3)), func() { c.tick(d) })
	}
	c.out.Send(ringLookahead*float64(1+c.rng.Intn(2)), ringDeliver, c.next, &ringMsg{depth: depth + 1}, 0)
}

// ringDeliver is the package-level TypedFunc for ring messages.
func ringDeliver(a, b any, _ uint8) {
	c := a.(*ringCell)
	m := b.(*ringMsg)
	c.record("m", m.depth)
	if m.depth < 5 {
		c.tick(m.depth + 1)
	}
}

// runRing executes the synthetic workload with the given number of
// cells mapped round-robin onto the given number of shards and returns
// the concatenated per-cell traces plus total fired events.
func runRing(t *testing.T, seed int64, cells, shards int) (string, uint64) {
	t.Helper()
	ss := NewSharded(seed, shards)
	ring := make([]*ringCell, cells)
	for i := range ring {
		ring[i] = &ringCell{
			sim: ss.Shard(i % shards),
			rng: NewRNG(DeriveSeed(seed, int64(100+i))),
			id:  i,
		}
	}
	// Channels in cell order: creation order is the delivery tie-break,
	// so it must be identical at every shard count. Cell i's messages
	// deliver to cell i+1, which lives on shard (i+1) mod shards.
	for i, c := range ring {
		c.out = ss.NewChannel(i%shards, (i+1)%cells%shards, ringLookahead)
		c.next = ring[(i+1)%cells]
	}
	for i, c := range ring {
		c := c
		c.sim.At(0.005*float64(i+1), func() { c.tick(0) })
	}
	if err := ss.RunUntil(3); err != nil {
		t.Fatalf("run: %v", err)
	}
	var sb strings.Builder
	for _, c := range ring {
		fmt.Fprintf(&sb, "cell%d:%s\n", c.id, strings.Join(c.trace, ","))
	}
	return sb.String(), ss.Fired()
}

func TestShardedMatchesAcrossShardCounts(t *testing.T) {
	const cells = 6
	ref, refFired := runRing(t, 42, cells, 1)
	if !strings.Contains(ref, "/m") {
		t.Fatalf("workload produced no cross-cell deliveries:\n%s", ref)
	}
	for _, shards := range []int{2, 3, 6} {
		got, fired := runRing(t, 42, cells, shards)
		if got != ref {
			t.Fatalf("shards=%d trace diverged from shards=1\n--- shards=1\n%s--- shards=%d\n%s", shards, ref, shards, got)
		}
		if fired != refFired {
			t.Fatalf("shards=%d fired %d events, shards=1 fired %d", shards, fired, refFired)
		}
	}
	// Different seeds must diverge (the fingerprint is not vacuous).
	other, _ := runRing(t, 43, cells, 2)
	if other == ref {
		t.Fatal("seed 43 produced the same trace as seed 42")
	}
}

func TestShardSeedsDistinctAndStable(t *testing.T) {
	for _, base := range []int64{0, 1, 42, -7, 1 << 40} {
		seen := map[int64]int{}
		for i := 0; i < 64; i++ {
			s := ShardSeed(base, i)
			if j, dup := seen[s]; dup {
				t.Fatalf("base %d: shards %d and %d share seed %d", base, j, i, s)
			}
			if s == base {
				t.Fatalf("base %d: shard %d seed equals the base seed", base, i)
			}
			seen[s] = i
		}
	}
	// Stability across partitionings: the seed for a given shard label
	// is a pure function of (base, label), independent of how many
	// shards the engine was built with.
	small, large := NewSharded(7, 2), NewSharded(7, 16)
	for i := 0; i < 2; i++ {
		a, b := small.ShardRNG(i).Int63(), large.ShardRNG(i).Int63()
		if a != b {
			t.Fatalf("shard %d stream differs between 2-shard and 16-shard engines: %d vs %d", i, a, b)
		}
	}
}

func TestChannelSendBelowLookaheadPanics(t *testing.T) {
	ss := NewSharded(1, 2)
	ch := ss.NewChannel(0, 1, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("send below lookahead did not panic")
		}
	}()
	ch.Send(0.25, ringDeliver, nil, &ringMsg{}, 0)
}

func TestShardedEventLimit(t *testing.T) {
	ss := NewSharded(1, 2)
	ss.EventLimit = 50
	for i := 0; i < 2; i++ {
		sim := ss.Shard(i)
		var loop func()
		loop = func() { sim.After(0.001, loop) }
		sim.At(0, loop)
	}
	if err := ss.Run(); !errors.Is(err, ErrEventLimit) {
		t.Fatalf("want ErrEventLimit, got %v", err)
	}
}

func TestShardedStopAndInterrupt(t *testing.T) {
	ss := NewSharded(1, 2)
	ch := ss.NewChannel(0, 1, 0.01)
	_ = ch
	sim := ss.Shard(1)
	fired := 0
	var loop func()
	loop = func() {
		fired++
		if fired == 10 {
			ss.Stop()
		}
		sim.After(0.001, loop)
	}
	sim.At(0, loop)
	if err := ss.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired < 10 {
		t.Fatalf("stopped after %d events, want >= 10", fired)
	}

	ss.Reset()
	boom := errors.New("cancelled")
	ss.SetInterrupt(0, func() error { return boom })
	ss.Shard(0).At(1, func() {})
	if err := ss.Run(); !errors.Is(err, boom) {
		t.Fatalf("want interrupt error, got %v", err)
	}
	// Reset must clear the coordinator checkpoint (mirroring the
	// per-shard Simulator.Reset contract).
	ss.Reset()
	ss.Shard(0).At(1, func() {})
	if err := ss.Run(); err != nil {
		t.Fatalf("stale interrupt survived Reset: %v", err)
	}
}

func TestShardedDrainAndReset(t *testing.T) {
	ss := NewSharded(9, 2)
	ch := ss.NewChannel(0, 1, 0.01)
	ss.Shard(0).At(0.5, func() {})
	ch.Send(0.02, ringDeliver, nil, &ringMsg{depth: 1}, 0)
	if got := ss.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2 (one event + one buffered message)", got)
	}
	var drained int
	ss.DrainPending(func(DrainedEvent) { drained++ })
	if drained != 2 {
		t.Fatalf("drained %d, want 2", drained)
	}
	if got := ss.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}

	ch.Send(0.02, ringDeliver, nil, &ringMsg{depth: 1}, 0)
	ss.Reset()
	if got := ss.Pending(); got != 0 {
		t.Fatalf("Pending after reset = %d, want 0", got)
	}
	if ch.seq != 0 {
		t.Fatalf("channel sequence %d not reset", ch.seq)
	}
	if now := ss.Now(); now != 0 {
		t.Fatalf("Now after reset = %v, want 0", now)
	}
}

func TestShardedRunUntilAdvancesClocks(t *testing.T) {
	ss := NewSharded(3, 3)
	ss.Shard(1).At(0.25, func() {})
	if err := ss.RunUntil(2); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 0; i < 3; i++ {
		if now := ss.Shard(i).Now(); now != 2 {
			t.Fatalf("shard %d clock = %v, want 2", i, now)
		}
	}
	if now := ss.Now(); now != 2 {
		t.Fatalf("Now = %v, want 2", now)
	}
	if math.IsInf(ss.Now(), 0) {
		t.Fatal("Now is infinite")
	}
}
