// Package des implements a deterministic discrete-event simulation
// engine: a simulator clock, an index-based binary-heap event queue
// with stable FIFO ordering for simultaneous events, and helpers for
// periodic and conditional scheduling.
//
// Time is modelled as float64 seconds from the start of the run.
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes runs bit-for-bit reproducible for a fixed
// seed and workload.
//
// # Memory model
//
// Event records live in a slab ([]eventRec) owned by the Simulator and
// are recycled through a free list, so steady-state scheduling and
// firing allocate nothing. Events handed back to callers are small
// generation-stamped handles (Event values, not pointers): a handle
// whose slot has since been freed or reused no longer matches the
// slot's generation stamp, so Cancel/Pending on a stale handle are
// safe no-ops. The hot path of the network simulator additionally uses
// typed events (ScheduleTyped) that carry their arguments in the
// record itself instead of in a captured closure, keeping the
// per-packet path allocation-free.
package des

import (
	"errors"
	"fmt"
	"math"
)

// Handler is the callback invoked when an event fires. It runs with
// the simulator clock set to the event's timestamp.
type Handler func()

// TypedFunc is the callback form of typed events: the simulator passes
// back the two operands and kind given to ScheduleTyped. Pass a
// package-level function (not a closure or method value) so scheduling
// a typed event performs no allocation; operands should be pointers,
// which box into `any` without allocating.
type TypedFunc func(a, b any, kind uint8)

// eventRec is one slab slot. Slots are addressed by index; heapIdx is
// the slot's position in the heap (-1 when the slot is free) and gen
// is bumped every time the slot is handed out, invalidating handles
// from earlier occupancies.
type eventRec struct {
	time    float64
	seq     uint64
	gen     uint32
	heapIdx int32
	kind    uint8
	// cls is the ordering class among simultaneous events: 0 for
	// locally scheduled events (FIFO by seq), 1 for cross-shard channel
	// deliveries (ordered by the partition-independent channel key that
	// rides in seq — see Channel). Locals fire before deliveries at the
	// same instant, a rule that is itself placement-independent because
	// an event's class depends only on whether its edge is a cut edge.
	cls  uint8
	h    Handler
	fn   TypedFunc
	a, b any
	name string
}

// Event is a generation-stamped handle to a scheduled callback. The
// zero Event is valid and inert: Pending reports false and Cancel is a
// no-op. Handles stay safe after the event fires or is cancelled —
// the underlying slot's generation stamp no longer matches, so every
// operation degrades to a no-op instead of touching a recycled event.
type Event struct {
	s   *Simulator
	id  int32 // slab index + 1; 0 means "no event"
	gen uint32
}

// rec returns the live slab record for the handle, or nil if the event
// already fired, was cancelled, or the handle is zero.
func (e Event) rec() *eventRec {
	if e.s == nil || e.id == 0 {
		return nil
	}
	r := &e.s.recs[e.id-1]
	if r.gen != e.gen || r.heapIdx < 0 {
		return nil
	}
	return r
}

// Time returns the simulated time at which the event fires, or 0 if it
// is no longer pending.
func (e Event) Time() float64 {
	if r := e.rec(); r != nil {
		return r.time
	}
	return 0
}

// Name returns the optional debug label given at scheduling time (""
// once the event is no longer pending).
func (e Event) Name() string {
	if r := e.rec(); r != nil {
		return r.name
	}
	return ""
}

// Pending reports whether the event is still queued and will fire.
func (e Event) Pending() bool { return e.rec() != nil }

// Cancel removes the event from the queue so it will not fire.
// Cancelling an event that already fired, was already cancelled, or is
// the zero Event is a safe no-op. The slot is recycled immediately, so
// Pending() of the simulator drops by one.
func (e Event) Cancel() {
	r := e.rec()
	if r == nil {
		return
	}
	s := e.s
	s.heapRemove(r.heapIdx)
	s.release(e.id - 1)
}

// Simulator owns the virtual clock and the pending-event queue.
// It is not safe for concurrent use; a simulation run is a single
// logical thread of control, per the usual DES model.
type Simulator struct {
	now  float64
	recs []eventRec
	free []int32 // free slab slots (LIFO for cache locality)
	heap []int32 // binary heap of slab indices, ordered by (time, seq)

	seq     uint64
	fired   uint64
	stopped bool
	// EventLimit, when non-zero, aborts Run with ErrEventLimit after
	// that many events have fired. It guards against runaway
	// self-rescheduling loops in tests. It is configuration, not run
	// state: Reset preserves it (but zeroes the fired counter, so the
	// budget restarts with the new run).
	EventLimit uint64

	// interrupt, when non-nil, is polled every interruptEvery fired
	// events; a non-nil return aborts RunUntil with that error. See
	// SetInterrupt.
	interrupt      func() error
	interruptEvery uint64
}

// ErrEventLimit is returned by Run and RunUntil when Simulator.EventLimit
// is exceeded.
var ErrEventLimit = errors.New("des: event limit exceeded")

// New returns a simulator with the clock at 0.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events that have been dispatched.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of live events still queued. Cancelled
// events are removed from the queue immediately and never counted.
func (s *Simulator) Pending() int { return len(s.heap) }

// alloc takes a slot off the free list (or grows the slab) and bumps
// its generation.
func (s *Simulator) alloc() int32 {
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		//hbplint:ignore hotalloc amortized slab growth: once the slab covers peak concurrent events, every alloc is a free-list pop; AllocsPerRun pins the steady state at 0.
		s.recs = append(s.recs, eventRec{})
		idx = int32(len(s.recs) - 1)
	}
	s.recs[idx].gen++
	return idx
}

// release returns a slot to the free list, dropping references so the
// slab does not retain handlers or packets past the event's life.
func (s *Simulator) release(idx int32) {
	r := &s.recs[idx]
	r.h = nil
	r.fn = nil
	r.a = nil
	r.b = nil
	r.name = ""
	r.heapIdx = -1
	//hbplint:ignore hotalloc free-list append into capacity released by alloc's pops; it can only grow to the slab's own length.
	s.free = append(s.free, idx)
}

func (s *Simulator) checkTime(t float64, name string) {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event %q at %.9f before now %.9f", name, t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("des: scheduling event %q at non-finite time %v", name, t))
	}
}

func (s *Simulator) schedule(t float64, name string, h Handler, fn TypedFunc, a, b any, kind uint8) Event {
	s.checkTime(t, name)
	idx := s.alloc()
	r := &s.recs[idx]
	r.time = t
	r.seq = s.seq
	s.seq++
	r.cls = 0
	r.h = h
	r.fn = fn
	r.a = a
	r.b = b
	r.kind = kind
	r.name = name
	s.heapPush(idx)
	return Event{s: s, id: idx + 1, gen: r.gen}
}

// At schedules h to run at absolute time t. Scheduling in the past
// (t < Now) panics: it would corrupt causality.
func (s *Simulator) At(t float64, h Handler) Event {
	return s.AtNamed(t, "", h)
}

// AtNamed is At with a debug label attached to the event.
func (s *Simulator) AtNamed(t float64, name string, h Handler) Event {
	if h == nil {
		panic("des: nil handler")
	}
	return s.schedule(t, name, h, nil, nil, nil, 0)
}

// After schedules h to run d seconds from now. Negative d panics.
func (s *Simulator) After(d float64, h Handler) Event {
	return s.AtNamed(s.now+d, "", h)
}

// AfterNamed is After with a debug label.
func (s *Simulator) AfterNamed(d float64, name string, h Handler) Event {
	return s.AtNamed(s.now+d, name, h)
}

// ScheduleTyped schedules the typed event fn(a, b, kind) at absolute
// time t. Unlike At, the operands ride in the event record itself, so
// no closure needs to be allocated per event — this is the
// steady-state scheduling path of the packet simulator (two events per
// hop). fn must be non-nil; pass a package-level function to keep the
// call allocation-free.
func (s *Simulator) ScheduleTyped(t float64, fn TypedFunc, a, b any, kind uint8) Event {
	if fn == nil {
		panic("des: nil typed handler")
	}
	return s.schedule(t, "", nil, fn, a, b, kind)
}

// Cancel marks an event so that it will not fire. Cancelling an event
// that already fired or was already cancelled is a no-op. It is
// equivalent to e.Cancel.
func (s *Simulator) Cancel(e Event) { e.Cancel() }

// Every schedules h to run every period seconds, starting at time
// start. It returns a stop function; calling it prevents all future
// firings. period must be positive.
func (s *Simulator) Every(start, period float64, h Handler) (stop func()) {
	if period <= 0 {
		panic("des: non-positive period")
	}
	stopped := false
	var tick func()
	var pending Event
	tick = func() {
		if stopped {
			return
		}
		h()
		if !stopped {
			pending = s.After(period, tick)
		}
	}
	pending = s.At(start, tick)
	return func() {
		stopped = true
		pending.Cancel()
	}
}

// Timer is a cancellable, reschedulable one-shot timer created by
// AfterFunc. Retransmission logic uses it: arm, then Stop on ack or
// Reset with a backed-off delay on timeout.
type Timer struct {
	sim  *Simulator
	h    Handler
	name string
	e    Event
}

// AfterFunc schedules h to run d seconds from now and returns a Timer
// that can stop or reschedule it. Unlike a bare Event, the Timer keeps
// the handler, so Reset can re-arm after the event has fired.
func (s *Simulator) AfterFunc(d float64, h Handler) *Timer {
	return s.AfterFuncNamed(d, "", h)
}

// AfterFuncNamed is AfterFunc with a debug label on the underlying
// events.
func (s *Simulator) AfterFuncNamed(d float64, name string, h Handler) *Timer {
	if h == nil {
		panic("des: nil handler")
	}
	t := &Timer{sim: s, h: h, name: name}
	t.e = s.AtNamed(s.now+d, name, h)
	return t
}

// Stop cancels the pending firing. It reports whether it actually
// prevented one; stopping a timer that already fired (or was already
// stopped) is a safe no-op returning false.
func (t *Timer) Stop() bool {
	if !t.e.Pending() {
		return false
	}
	t.e.Cancel()
	return true
}

// Reset re-arms the timer to fire d seconds from now, cancelling any
// pending firing first. It works whether or not the timer has already
// fired, which is what a retransmission loop needs.
func (t *Timer) Reset(d float64) {
	t.Stop()
	t.e = t.sim.AtNamed(t.sim.Now()+d, t.name, t.h)
}

// Pending reports whether a firing is scheduled.
func (t *Timer) Pending() bool { return t.e.Pending() }

// Stop makes Run return after the currently dispatching event (if any)
// completes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// DefaultInterruptEvery is the event-batch size between interrupt
// polls when SetInterrupt is given a non-positive interval. Checking
// roughly once per thousand events keeps the poll invisible next to
// dispatch work while bounding cancellation latency to well under a
// millisecond of wall time.
const DefaultInterruptEvery = 1024

// SetInterrupt installs a cooperative cancellation checkpoint: check
// is polled once per `every` fired events (DefaultInterruptEvery when
// every <= 0), and a non-nil return makes RunUntil stop — after the
// currently dispatching event, never mid-handler — and return that
// error. Pending events stay queued, so the owner can drain or resume.
//
// The checkpoint never perturbs event order or the simulated clock; a
// run that is not interrupted is bit-identical with or without an
// interrupt installed. Pass nil to remove the checkpoint. The intended
// check is a closure over a context.Context's Err method, giving the
// run-to-completion loops of the experiment runners a supervised,
// cancellable lifecycle.
func (s *Simulator) SetInterrupt(every uint64, check func() error) {
	if every == 0 {
		every = DefaultInterruptEvery
	}
	s.interrupt = check
	s.interruptEvery = every
}

// Run dispatches events until the queue is empty, Stop is called, or
// the event limit is hit.
//
//hbplint:hotpath event-dispatch core; BenchmarkHotPathFig8/EventQueue measure this loop
func (s *Simulator) Run() error {
	return s.RunUntil(math.Inf(1))
}

// RunUntil dispatches events with time <= end, then advances the clock
// to end (if any event was pending beyond it, the clock still becomes
// end, never more). It returns ErrEventLimit if the event budget is
// exhausted.
func (s *Simulator) RunUntil(end float64) error {
	s.stopped = false
	if err := s.runWindow(end, true); err != nil {
		return err
	}
	if !math.IsInf(end, 1) && end > s.now {
		s.now = end
	}
	return nil
}

// runWindow dispatches events with time < bound (time <= bound when
// inclusive), honoring Stop, the event limit and the interrupt hook.
// Unlike RunUntil it neither clears a Stop left by an earlier window
// nor advances the clock to the bound: the sharded coordinator calls
// it once per conservative window and performs both at run boundaries.
func (s *Simulator) runWindow(bound float64, inclusive bool) error {
	for len(s.heap) > 0 && !s.stopped {
		// Cooperative checkpoint: polled between events (never
		// mid-handler, never after the head event is popped) so an
		// interrupted run keeps its whole pending queue.
		if s.interrupt != nil && s.fired%s.interruptEvery == 0 {
			if err := s.interrupt(); err != nil {
				return err
			}
		}
		idx := s.heap[0]
		r := &s.recs[idx]
		if r.time > bound || (!inclusive && r.time == bound) {
			break
		}
		// Copy the dispatch fields out and recycle the slot before the
		// callback runs: the callback may schedule (growing the slab) or
		// hold a stale handle to this very slot, both of which the
		// generation stamp already guards.
		t, h, fn, a, b, kind := r.time, r.h, r.fn, r.a, r.b, r.kind
		s.heapRemove(0)
		s.release(idx)
		s.now = t
		s.fired++
		if s.EventLimit > 0 && s.fired > s.EventLimit {
			return ErrEventLimit
		}
		if h != nil {
			h()
		} else {
			fn(a, b, kind)
		}
	}
	return nil
}

// nextEventTime returns the timestamp of the earliest pending event.
// The coordinator uses it to size the next conservative window.
func (s *Simulator) nextEventTime() (float64, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.recs[s.heap[0]].time, true
}

// scheduleMsg injects a cross-shard channel delivery: a typed event in
// ordering class 1 whose seq is the partition-independent channel key
// (channel id, per-channel sequence) rather than a draw from the local
// seq counter. The coordinator calls it at window barriers only.
func (s *Simulator) scheduleMsg(t float64, fn TypedFunc, a, b any, kind uint8, key uint64) {
	s.checkTime(t, "channel delivery")
	idx := s.alloc()
	r := &s.recs[idx]
	r.time = t
	r.seq = key
	r.cls = 1
	r.h = nil
	r.fn = fn
	r.a = a
	r.b = b
	r.kind = kind
	r.name = ""
	s.heapPush(idx)
}

// DrainedEvent is one pending event handed back by DrainPending. For
// typed events (ScheduleTyped) the operands and kind are populated and
// Handler is nil; for closure events only Handler is set. Neither is
// invoked — the drain exists so the owner can reclaim resources the
// event record was keeping alive (pooled packets riding typed link
// events, above all) instead of leaking them when a run is torn down.
type DrainedEvent struct {
	Time    float64
	Name    string
	Handler Handler
	Fn      TypedFunc
	A, B    any
	Kind    uint8
}

// DrainPending removes every pending event without firing it, passing
// each to visit (which may be nil) in deterministic (time, seq) order.
// The clock, fired counter and event limit are untouched, so a drain
// composes with result collection after RunUntil. This is the
// teardown path a completed run must take before leak-checking pooled
// resources: Reset alone drops the slab's references, which silently
// strands any pooled packet still riding an in-flight event.
func (s *Simulator) DrainPending(visit func(DrainedEvent)) {
	for len(s.heap) > 0 {
		idx := s.heap[0]
		r := &s.recs[idx]
		if visit != nil {
			visit(DrainedEvent{
				Time: r.time, Name: r.name,
				Handler: r.h, Fn: r.fn, A: r.a, B: r.b, Kind: r.kind,
			})
		}
		s.heapRemove(0)
		s.release(idx)
	}
}

// Reset discards all pending events and rewinds the clock to zero. The
// slab and free list are retained for reuse, and every outstanding
// Event handle is invalidated (Pending reports false; Cancel is a
// no-op). EventLimit is preserved — it is configuration, not run state
// — while the fired counter restarts at zero, so the event budget
// applies afresh to the next run. An installed interrupt hook is
// removed: it is run state (typically a closure over the cancelled
// run's context), and a stale checkpoint must not leak into the next
// run on a reused simulator. Reset drops event payload references
// without visiting them; when pending events may hold pooled resources
// (packets in typed link events), DrainPending first, so the pool's
// accounting survives the teardown.
func (s *Simulator) Reset() {
	for _, idx := range s.heap {
		s.release(idx)
	}
	s.heap = s.heap[:0]
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.stopped = false
	s.interrupt = nil
	s.interruptEvery = 0
}

// --- index heap over the slab ---------------------------------------

// lessRec orders slots by (time, cls, seq): earlier time first; among
// simultaneous events, locally scheduled events (cls 0, FIFO by local
// seq) before channel deliveries (cls 1, ordered by channel key). The
// key never references which shard scheduled what, so the relative
// order of any two events is identical however the model is placed
// across shards — the heart of the shards=1 ≡ shards=N guarantee.
func (s *Simulator) lessRec(a, b int32) bool {
	ra, rb := &s.recs[a], &s.recs[b]
	if ra.time != rb.time {
		return ra.time < rb.time
	}
	if ra.cls != rb.cls {
		return ra.cls < rb.cls
	}
	return ra.seq < rb.seq
}

func (s *Simulator) heapPush(idx int32) {
	//hbplint:ignore hotalloc amortized heap growth: the index heap's capacity tracks peak pending events, mirroring the slab; steady state is append-into-capacity.
	s.heap = append(s.heap, idx)
	s.recs[idx].heapIdx = int32(len(s.heap) - 1)
	s.siftUp(int32(len(s.heap) - 1))
}

// heapRemove deletes the element at heap position pos, restoring heap
// order. The removed slot's heapIdx is left untouched (the caller
// releases it).
func (s *Simulator) heapRemove(pos int32) {
	n := int32(len(s.heap)) - 1
	if pos != n {
		s.heap[pos] = s.heap[n]
		s.recs[s.heap[pos]].heapIdx = pos
	}
	s.heap = s.heap[:n]
	if pos < n {
		if !s.siftDown(pos) {
			s.siftUp(pos)
		}
	}
}

func (s *Simulator) siftUp(pos int32) {
	idx := s.heap[pos]
	for pos > 0 {
		parent := (pos - 1) / 2
		if !s.lessRec(idx, s.heap[parent]) {
			break
		}
		s.heap[pos] = s.heap[parent]
		s.recs[s.heap[pos]].heapIdx = pos
		pos = parent
	}
	s.heap[pos] = idx
	s.recs[idx].heapIdx = pos
}

func (s *Simulator) siftDown(pos int32) bool {
	idx := s.heap[pos]
	start := pos
	n := int32(len(s.heap))
	for {
		c := 2*pos + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && s.lessRec(s.heap[r], s.heap[c]) {
			c = r
		}
		if !s.lessRec(s.heap[c], idx) {
			break
		}
		s.heap[pos] = s.heap[c]
		s.recs[s.heap[pos]].heapIdx = pos
		pos = c
	}
	s.heap[pos] = idx
	s.recs[idx].heapIdx = pos
	return pos > start
}
