// Package des implements a deterministic discrete-event simulation
// engine: a simulator clock, a binary-heap event queue with stable
// FIFO ordering for simultaneous events, and helpers for periodic and
// conditional scheduling.
//
// Time is modelled as float64 seconds from the start of the run.
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes runs bit-for-bit reproducible for a fixed
// seed and workload.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Handler is the callback invoked when an event fires. It runs with
// the simulator clock set to the event's timestamp.
type Handler func()

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Simulator.At, Simulator.After and friends.
type Event struct {
	time      float64
	seq       uint64
	index     int // heap index; -1 when not queued
	handler   Handler
	cancelled bool
	name      string
}

// Time returns the simulated time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Name returns the optional debug label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Pending reports whether the event is still in the queue and will
// fire unless cancelled.
func (e *Event) Pending() bool { return e.index >= 0 && !e.cancelled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending-event queue.
// It is not safe for concurrent use; a simulation run is a single
// logical thread of control, per the usual DES model.
type Simulator struct {
	now     float64
	queue   eventQueue
	seq     uint64
	fired   uint64
	stopped bool
	// EventLimit, when non-zero, aborts Run with ErrEventLimit after
	// that many events have fired. It guards against runaway
	// self-rescheduling loops in tests.
	EventLimit uint64
}

// ErrEventLimit is returned by Run and RunUntil when Simulator.EventLimit
// is exceeded.
var ErrEventLimit = errors.New("des: event limit exceeded")

// New returns a simulator with the clock at 0.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events that have been dispatched.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (including
// cancelled events that have not yet been popped).
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules h to run at absolute time t. Scheduling in the past
// (t < Now) panics: it would corrupt causality.
func (s *Simulator) At(t float64, h Handler) *Event {
	return s.AtNamed(t, "", h)
}

// AtNamed is At with a debug label attached to the event.
func (s *Simulator) AtNamed(t float64, name string, h Handler) *Event {
	if h == nil {
		panic("des: nil handler")
	}
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event %q at %.9f before now %.9f", name, t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("des: scheduling event %q at non-finite time %v", name, t))
	}
	e := &Event{time: t, seq: s.seq, handler: h, name: name}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules h to run d seconds from now. Negative d panics.
func (s *Simulator) After(d float64, h Handler) *Event {
	return s.AtNamed(s.now+d, "", h)
}

// AfterNamed is After with a debug label.
func (s *Simulator) AfterNamed(d float64, name string, h Handler) *Event {
	return s.AtNamed(s.now+d, name, h)
}

// Cancel marks an event so that it will not fire. Cancelling an event
// that already fired or was already cancelled is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil {
		return
	}
	e.cancelled = true
}

// Every schedules h to run every period seconds, starting at time
// start. It returns a stop function; calling it prevents all future
// firings. period must be positive.
func (s *Simulator) Every(start, period float64, h Handler) (stop func()) {
	if period <= 0 {
		panic("des: non-positive period")
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		h()
		if !stopped {
			pending = s.After(period, tick)
		}
	}
	pending = s.At(start, tick)
	return func() {
		stopped = true
		s.Cancel(pending)
	}
}

// Timer is a cancellable, reschedulable one-shot timer created by
// AfterFunc. Retransmission logic uses it: arm, then Stop on ack or
// Reset with a backed-off delay on timeout.
type Timer struct {
	sim *Simulator
	h   Handler
	e   *Event
}

// AfterFunc schedules h to run d seconds from now and returns a Timer
// that can stop or reschedule it. Unlike a bare Event, the Timer keeps
// the handler, so Reset can re-arm after the event has fired.
func (s *Simulator) AfterFunc(d float64, h Handler) *Timer {
	return s.AfterFuncNamed(d, "", h)
}

// AfterFuncNamed is AfterFunc with a debug label on the underlying
// events.
func (s *Simulator) AfterFuncNamed(d float64, name string, h Handler) *Timer {
	if h == nil {
		panic("des: nil handler")
	}
	t := &Timer{sim: s, h: h}
	t.e = s.AtNamed(s.now+d, name, h)
	return t
}

// Stop cancels the pending firing. It reports whether it actually
// prevented one; stopping a timer that already fired (or was already
// stopped) is a safe no-op returning false.
func (t *Timer) Stop() bool {
	if t.e == nil || !t.e.Pending() {
		return false
	}
	t.sim.Cancel(t.e)
	return true
}

// Reset re-arms the timer to fire d seconds from now, cancelling any
// pending firing first. It works whether or not the timer has already
// fired, which is what a retransmission loop needs.
func (t *Timer) Reset(d float64) {
	t.Stop()
	t.e = t.sim.AtNamed(t.sim.Now()+d, t.e.Name(), t.h)
}

// Pending reports whether a firing is scheduled.
func (t *Timer) Pending() bool { return t.e != nil && t.e.Pending() }

// Stop makes Run return after the currently dispatching event (if any)
// completes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// Run dispatches events until the queue is empty, Stop is called, or
// the event limit is hit.
func (s *Simulator) Run() error {
	return s.RunUntil(math.Inf(1))
}

// RunUntil dispatches events with time <= end, then advances the clock
// to end (if any event was pending beyond it, the clock still becomes
// end, never more). It returns ErrEventLimit if the event budget is
// exhausted.
func (s *Simulator) RunUntil(end float64) error {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.time > end {
			break
		}
		heap.Pop(&s.queue)
		if next.cancelled {
			continue
		}
		s.now = next.time
		s.fired++
		if s.EventLimit > 0 && s.fired > s.EventLimit {
			return ErrEventLimit
		}
		next.handler()
	}
	if !math.IsInf(end, 1) && end > s.now {
		s.now = end
	}
	return nil
}

// Reset discards all pending events and rewinds the clock to zero.
func (s *Simulator) Reset() {
	s.now = 0
	s.queue = nil
	s.seq = 0
	s.fired = 0
	s.stopped = false
}
