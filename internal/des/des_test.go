package des

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	s := New()
	if err := s.Run(); err != nil {
		t.Fatalf("Run on empty queue: %v", err)
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved with no events: %v", s.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []float64
	for _, tm := range []float64{3, 1, 2, 0.5, 2.5} {
		tm := tm
		s.At(tm, func() { got = append(got, tm) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(1.0, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO at %d: got %d", i, v)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	s := New()
	s.At(4.25, func() {
		if s.Now() != 4.25 {
			t.Errorf("Now inside handler = %v, want 4.25", s.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 4.25 {
		t.Fatalf("final clock %v, want 4.25", s.Now())
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New()
	var secondAt float64
	s.At(2, func() {
		s.After(3, func() { secondAt = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if secondAt != 5 {
		t.Fatalf("chained After fired at %v, want 5", secondAt)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNonFiniteTimePanics(t *testing.T) {
	s := New()
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scheduling at %v did not panic", bad)
				}
			}()
			s.At(bad, func() {})
		}()
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(1, func() { fired = true })
	s.Cancel(e)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() {
		t.Fatal("Pending() = true after Cancel")
	}
	s.Cancel(Event{}) // zero handle must not panic
	s.Cancel(e)       // double cancel must not panic
}

func TestCancelledEventsNotPending(t *testing.T) {
	// Satellite of the pooling refactor: Pending() must report only
	// live events — a cancelled event leaves the queue immediately.
	s := New()
	e1 := s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	e1.Cancel()
	if s.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1 (cancelled events must not be counted)", s.Pending())
	}
}

func TestStaleHandleIsInert(t *testing.T) {
	// Pool-reuse safety: after a slot is recycled, a handle from the
	// previous occupancy must neither observe nor cancel the new event.
	s := New()
	stale := s.At(1, func() { t.Error("cancelled event fired") })
	stale.Cancel()
	fired := false
	fresh := s.At(1, func() { fired = true }) // reuses the freed slot
	if stale.Pending() {
		t.Fatal("stale handle reports pending")
	}
	stale.Cancel() // must NOT cancel the new occupant
	if !fresh.Pending() {
		t.Fatal("stale Cancel hit a recycled slot")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("fresh event did not fire")
	}
	if stale.Time() != 0 || stale.Name() != "" {
		t.Fatal("stale handle leaks recycled slot state")
	}
}

func TestAllocsPerEvent(t *testing.T) {
	// Steady-state scheduling and firing must not allocate: records are
	// recycled through the slab free list. The handler is pre-bound so
	// only the engine's own cost is measured.
	s := New()
	n := 0
	h := func() { n++ }
	for i := 0; i < 64; i++ { // warm the slab
		s.At(s.Now(), h)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		s.At(s.Now(), h)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("scheduled-and-fired event allocates %.2f times, want 0", avg)
	}
}

func TestAllocsPerTypedEvent(t *testing.T) {
	s := New()
	var fired int
	counter := &fired
	for i := 0; i < 64; i++ {
		s.ScheduleTyped(s.Now(), typedBump, counter, nil, 7)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		s.ScheduleTyped(s.Now(), typedBump, counter, nil, 7)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("typed event allocates %.2f times, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("typed handler never ran")
	}
}

func typedBump(a, b any, kind uint8) {
	if kind != 7 {
		panic("wrong kind")
	}
	*(a.(*int))++
}

func TestTypedEventDispatch(t *testing.T) {
	s := New()
	n := 0
	e := s.ScheduleTyped(2.5, typedBump, &n, nil, 7)
	if !e.Pending() || e.Time() != 2.5 {
		t.Fatalf("typed event not pending at its time: %v %v", e.Pending(), e.Time())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 || s.Now() != 2.5 {
		t.Fatalf("typed dispatch n=%d now=%v", n, s.Now())
	}
	e2 := s.ScheduleTyped(3, typedBump, &n, nil, 7)
	e2.Cancel()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatal("cancelled typed event fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4} {
		tm := tm
		s.At(tm, func() { fired = append(fired, tm) })
	}
	if err := s.RunUntil(2.5); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	if s.Now() != 2.5 {
		t.Fatalf("clock %v after RunUntil(2.5)", s.Now())
	}
	// Resume: remaining events still fire.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("after resume fired %v, want 4 events", fired)
	}
}

func TestRunUntilDoesNotRewindClock(t *testing.T) {
	s := New()
	s.At(5, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 5 {
		t.Fatalf("RunUntil rewound the clock to %v", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(float64(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	if s.Pending() == 0 {
		t.Fatal("Stop should leave events pending")
	}
}

func TestEvery(t *testing.T) {
	s := New()
	var times []float64
	stop := s.Every(1, 2, func() {
		times = append(times, s.Now())
		if len(times) == 4 {
			s.Stop()
		}
	})
	defer stop()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5, 7}
	if len(times) != len(want) {
		t.Fatalf("periodic fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("periodic fired at %v, want %v", times, want)
		}
	}
}

func TestEveryStop(t *testing.T) {
	s := New()
	n := 0
	var stop func()
	stop = s.Every(0, 1, func() {
		n++
		if n == 2 {
			stop()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("periodic fired %d times after stop, want 2", n)
	}
}

func TestEventLimit(t *testing.T) {
	s := New()
	s.EventLimit = 10
	var tick func()
	tick = func() { s.After(1, tick) }
	s.At(0, tick)
	if err := s.Run(); err != ErrEventLimit {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
}

func TestReset(t *testing.T) {
	s := New()
	s.At(1, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Fired() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestResetSemantics(t *testing.T) {
	s := New()
	s.EventLimit = 5
	var tick func()
	tick = func() { s.After(1, tick) }
	s.At(0, tick)
	if err := s.Run(); err != ErrEventLimit {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
	e := s.At(s.Now()+1, func() {})
	s.Reset()
	// Handles from before Reset are invalidated, pending events gone.
	if e.Pending() {
		t.Fatal("pre-Reset handle still pending")
	}
	e.Cancel() // must be a no-op, not corrupt the fresh queue
	// EventLimit is configuration and survives Reset; the fired budget
	// restarts, so the same limit applies to the new run.
	if s.EventLimit != 5 {
		t.Fatalf("Reset cleared EventLimit: %d", s.EventLimit)
	}
	n := 0
	for i := 0; i < 5; i++ {
		s.At(float64(i), func() { n++ })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run within restarted budget: %v", err)
	}
	if n != 5 {
		t.Fatalf("fired %d, want 5", n)
	}
}

func TestNilHandlerPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	s.At(1, nil)
}

// Property: for any set of non-negative offsets, events fire in
// non-decreasing time order and the final clock equals the max offset.
func TestPropertyOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := New()
		var fired []float64
		maxT := 0.0
		for _, v := range raw {
			tm := float64(v) / 100
			if tm > maxT {
				maxT = tm
			}
			s.At(tm, func() { fired = append(fired, tm) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		return s.Now() == maxT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset fires exactly the others.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(times []uint8, mask []bool) bool {
		s := New()
		fired := map[int]bool{}
		events := make([]Event, len(times))
		for i, v := range times {
			i := i
			events[i] = s.At(float64(v), func() { fired[i] = true })
		}
		cancelled := map[int]bool{}
		for i := range events {
			if i < len(mask) && mask[i] {
				s.Cancel(events[i])
				cancelled[i] = true
			}
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := range events {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(7)
	c1 := g.Split(1)
	g2 := NewRNG(7)
	c2 := g2.Split(2)
	equal := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			equal++
		}
	}
	if equal > 5 {
		t.Fatalf("split streams look correlated: %d/100 equal draws", equal)
	}
}

func TestSample(t *testing.T) {
	g := NewRNG(1)
	xs := []int{10, 20, 30, 40, 50}
	got := Sample(g, xs, 3)
	if len(got) != 3 {
		t.Fatalf("Sample returned %d elements, want 3", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("Sample returned duplicate %d", v)
		}
		seen[v] = true
		found := false
		for _, x := range xs {
			if x == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("Sample returned %d not in population", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized Sample did not panic")
		}
	}()
	Sample(g, xs, 6)
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(2, 3)
		if v < 2 || v >= 3 {
			t.Fatalf("Uniform(2,3) = %v out of range", v)
		}
	}
}

func TestAfterFuncTimer(t *testing.T) {
	sim := New()
	fired := 0
	tm := sim.AfterFunc(1, func() { fired++ })
	if !tm.Pending() {
		t.Fatal("freshly armed timer not pending")
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	// Reset after firing re-arms with the same handler.
	tm.Reset(2)
	if !tm.Pending() {
		t.Fatal("Reset did not re-arm a fired timer")
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 || sim.Now() != 3 {
		t.Fatalf("fired=%d now=%v, want 2 at t=3", fired, sim.Now())
	}
}

func TestTimerStop(t *testing.T) {
	sim := New()
	fired := 0
	tm := sim.AfterFunc(1, func() { fired++ })
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("stopped timer fired")
	}
	// Stop after firing is a safe no-op returning false.
	tm.Reset(1)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Stop() {
		t.Fatal("Stop after firing reported true")
	}
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
}

func TestTimerResetWhilePending(t *testing.T) {
	sim := New()
	var at float64
	tm := sim.AfterFunc(1, func() { at = sim.Now() })
	sim.At(0.5, func() { tm.Reset(3) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3.5 {
		t.Fatalf("reset timer fired at %v, want 3.5", at)
	}
}

func TestCancelFiredEventNoOp(t *testing.T) {
	// Regression: cancelling an event that already fired must be a safe
	// no-op — it must not panic, corrupt the queue, or affect later
	// events sharing the heap.
	sim := New()
	order := []int{}
	e1 := sim.At(1, func() { order = append(order, 1) })
	sim.At(2, func() { order = append(order, 2) })
	if err := sim.RunUntil(1.5); err != nil {
		t.Fatal(err)
	}
	sim.Cancel(e1) // already fired
	sim.Cancel(e1) // twice, still a no-op
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
	if e1.Pending() {
		t.Fatal("cancelled fired event reported pending")
	}
}
