package des

import "math/rand"

// RNG wraps math/rand with a fixed seed and a few distributions the
// simulator needs. Every stochastic component of a scenario should
// draw from one RNG derived from the scenario seed, so that a run is
// reproducible end to end.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child generator. Children produced with
// distinct labels have uncorrelated streams; the parent stream is
// advanced by one draw.
func (g *RNG) Split(label int64) *RNG {
	return NewRNG(g.r.Int63() ^ (label * 0x5851F42D4C957F2D))
}

// DeriveSeed mixes a stable label into a base seed with the splitmix64
// finalizer, yielding an independent child seed. It is a pure function
// of (base, label): the result does not depend on how many other
// children exist or in which order they are derived, so seeds keyed by
// a stable model label (a shard index, an AS number, a retry attempt)
// are identical across partitionings of the same scenario. The
// scenario runner's retry seeds (scenario.AttemptSeed) and the sharded
// engine's per-shard RNG streams both use it.
func DeriveSeed(base, label int64) int64 {
	mix := uint64(base) ^ (uint64(label) * 0xbf58476d1ce4e5b9)
	mix ^= mix >> 27
	mix *= 0x94d049bb133111eb
	return int64(mix)
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a uniform draw in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential draw with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Pick returns a uniformly chosen element of xs. It panics on an
// empty slice, mirroring slice indexing semantics.
func Pick[T any](g *RNG, xs []T) T {
	return xs[g.Intn(len(xs))]
}

// Sample returns k distinct elements of xs chosen uniformly at random,
// in random order. It panics if k > len(xs).
func Sample[T any](g *RNG, xs []T, k int) []T {
	if k > len(xs) {
		panic("des: sample larger than population")
	}
	idx := g.Perm(len(xs))[:k]
	out := make([]T, k)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}
