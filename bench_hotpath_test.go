package repro

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchhot"
	"repro/internal/experiments"
)

// The BenchmarkHotPath* family tracks the zero-allocation refactor of
// the simulation hot path (event slab + typed link events + packet
// pool). Bodies live in internal/benchhot so cmd/benchhotpath can run
// the identical code and emit BENCH_hotpath.json.

func BenchmarkHotPathFig8(b *testing.B)       { benchhot.Fig8(b) }
func BenchmarkHotPathForwarding(b *testing.B) { benchhot.Forwarding(b) }
func BenchmarkHotPathEventQueue(b *testing.B) { benchhot.EventQueue(b) }
func BenchmarkHotPathTypedEvent(b *testing.B) { benchhot.TypedEvent(b) }

// BenchmarkHotPathHierarchical is the unified two-level scenario
// (inter-AS walk + embedded per-AS router-level traceback).
func BenchmarkHotPathHierarchical(b *testing.B) { benchhot.Hierarchical(b) }

// The forest pair brackets the parallel engine: identical event
// schedules (the fingerprint invariant), so Shard1/Shard8 ns/op is
// pure engine speedup on multi-core hosts.
func BenchmarkHotPathForestShard1(b *testing.B) { benchhot.Forest(1)(b) }
func BenchmarkHotPathForestShard8(b *testing.B) { benchhot.Forest(8)(b) }

// BenchmarkHotPathInternet is the reduced internet-scale scenario end
// to end: macro-flow expansion at armed routers over a compressed
// route table. BenchmarkHotPathInternetRoute isolates the compressed
// next-hop lookup at 10⁵-endpoint scale and gauges routing bytes per
// node.
func BenchmarkHotPathInternet(b *testing.B)      { benchhot.Internet(b) }
func BenchmarkHotPathInternetRoute(b *testing.B) { benchhot.InternetRoute(b) }

// exercisedRoots maps every //hbplint:hotpath root to the benchmark
// that drives it. Annotating a new root without extending this table —
// and the benchmark coverage it documents — fails
// TestHotPathRootsExercised, so the hotalloc-enforced region cannot
// drift from what the BenchmarkHotPath* family actually measures.
var exercisedRoots = map[string]string{
	"des.Simulator.Run":         "BenchmarkHotPathFig8 / EventQueue / TypedEvent drive the dispatch loop",
	"netsim.Node.Send":          "BenchmarkHotPathFig8 and Forwarding originate every packet here",
	"netsim.Node.Inject":        "BenchmarkHotPathInternet materializes every macro-flow packet here",
	"netsim.linkDispatch":       "BenchmarkHotPathForwarding and Fig8 forward packets hop by hop",
	"netsim.crossArrive":        "BenchmarkHotPathForestShard8 delivers ring traffic across shard boundaries",
	"netsim.denseTable.NextHop": "BenchmarkHotPathForwarding and Fig8 resolve hops on dense tables (small topologies auto-route dense)",
	"netsim.treeRoutes.NextHop": "BenchmarkHotPathInternetRoute and Internet resolve hops on the compressed table",
	"traffic.macroTick":         "BenchmarkHotPathInternet drives the flow-level tick loop",
}

// TestHotPathRootsExercised is the benchmark guard: the set of
// //hbplint:hotpath roots found in the simulator sources must equal
// the exercisedRoots table, and the two scenarios the table cites
// (Fig8 and the sharded forest) must actually run those code paths.
func TestHotPathRootsExercised(t *testing.T) {
	found := collectHotpathRoots(t, "internal/des", "internal/netsim", "internal/traffic")
	for root := range found {
		if _, ok := exercisedRoots[root]; !ok {
			t.Errorf("//hbplint:hotpath root %s is not in the exercisedRoots table: name the benchmark that measures it (and make sure one does)", root)
		}
	}
	for root, bench := range exercisedRoots {
		if !found[root] {
			t.Errorf("exercisedRoots lists %s (%s) but no //hbplint:hotpath directive marks it; remove the entry or restore the annotation", root, bench)
		}
	}
	if t.Failed() {
		return
	}

	// Exercise proof, on the benchmarks' own reduced-scale scenarios.
	// Fig8 covers Run (events fired), Node.Send (originated packets)
	// and linkDispatch (throughput samples exist only if packets
	// crossed links hop by hop).
	cfg := benchhot.Fig8Config()
	cfg.Duration = 10
	cfg.AttackEnd = 8
	cfg.Seed = 1
	r, err := experiments.RunTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.EventsFired == 0 {
		t.Error("Fig8 scenario fired no events; des.Simulator.Run was not exercised")
	}
	if r.Throughput.Len() == 0 {
		t.Error("Fig8 scenario produced no throughput samples; the forwarding path was not exercised")
	}
	// The sharded forest at width 2 covers crossArrive: the parts form
	// a cross-traffic ring placed round-robin over the shards, so ring
	// traffic must cross a shard boundary to be delivered at all.
	fcfg := benchhot.ForestConfig(2)
	fcfg.Duration = 10
	fcfg.AttackEnd = 8
	fcfg.Seed = 1
	fr, err := experiments.RunShardedForest(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if fr.EventsFired == 0 || fr.Captures == 0 {
		t.Errorf("sharded forest at width 2 fired %d events with %d captures; the cross-shard delivery path was not exercised", fr.EventsFired, fr.Captures)
	}
	// The reduced internet scenario covers the three internet-scale
	// roots: macroTick (macro flows sent packets at all), Node.Inject
	// (those packets materialized and were delivered — captures require
	// delivery), and treeRoutes.NextHop (the config forces the
	// compressed table, so every forwarded hop resolved through it).
	icfg := benchhot.InternetSmallConfig()
	ir, err := experiments.RunInternet(icfg)
	if err != nil {
		t.Fatal(err)
	}
	if ir.AttackSent == 0 || ir.LegitSent == 0 {
		t.Errorf("internet scenario sent %d attack / %d legit packets; traffic.macroTick was not exercised", ir.AttackSent, ir.LegitSent)
	}
	if ir.Captures == 0 {
		t.Error("internet scenario captured nothing; netsim.Node.Inject expansion was not exercised end to end")
	}
	if ir.RouteKind != "compressed" {
		t.Errorf("internet scenario routed %q; netsim.treeRoutes.NextHop was not exercised", ir.RouteKind)
	}
}

// collectHotpathRoots parses the named directories' non-test sources
// and returns the functions annotated //hbplint:hotpath, keyed as
// pkg.Recv.Name (or pkg.Name for free functions).
func collectHotpathRoots(t *testing.T, dirs ...string) map[string]bool {
	t.Helper()
	roots := map[string]bool{}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "hbplint:hotpath") {
						continue
					}
					key := f.Name.Name + "."
					if fd.Recv != nil && len(fd.Recv.List) > 0 {
						rt := fd.Recv.List[0].Type
						if star, ok := rt.(*ast.StarExpr); ok {
							rt = star.X
						}
						if id, ok := rt.(*ast.Ident); ok {
							key += id.Name + "."
						}
					}
					roots[key+fd.Name.Name] = true
				}
			}
		}
	}
	return roots
}
