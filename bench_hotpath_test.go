package repro

import (
	"testing"

	"repro/internal/benchhot"
)

// The BenchmarkHotPath* family tracks the zero-allocation refactor of
// the simulation hot path (event slab + typed link events + packet
// pool). Bodies live in internal/benchhot so cmd/benchhotpath can run
// the identical code and emit BENCH_hotpath.json.

func BenchmarkHotPathFig8(b *testing.B)       { benchhot.Fig8(b) }
func BenchmarkHotPathForwarding(b *testing.B) { benchhot.Forwarding(b) }
func BenchmarkHotPathEventQueue(b *testing.B) { benchhot.EventQueue(b) }
func BenchmarkHotPathTypedEvent(b *testing.B) { benchhot.TypedEvent(b) }

// BenchmarkHotPathHierarchical is the unified two-level scenario
// (inter-AS walk + embedded per-AS router-level traceback).
func BenchmarkHotPathHierarchical(b *testing.B) { benchhot.Hierarchical(b) }

// The forest pair brackets the parallel engine: identical event
// schedules (the fingerprint invariant), so Shard1/Shard8 ns/op is
// pure engine speedup on multi-core hosts.
func BenchmarkHotPathForestShard1(b *testing.B) { benchhot.Forest(1)(b) }
func BenchmarkHotPathForestShard8(b *testing.B) { benchhot.Forest(8)(b) }
