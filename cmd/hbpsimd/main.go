// Command hbpsimd is the scenario service daemon: a long-lived HTTP
// server executing declarative simulation suites under supervision —
// per-run deadlines, panic isolation, bounded retry of infrastructure
// faults, admission control on the submission queue, crash-safe
// journaling and graceful drain on SIGINT/SIGTERM.
//
// Daemon mode:
//
//	hbpsimd -addr 127.0.0.1:8080 -journal runs.jsonl
//	curl -X POST localhost:8080/suites -d @suite.json
//	curl localhost:8080/suites/s-1
//
// Batch mode runs one suite to completion and exits (no HTTP):
//
//	hbpsimd -suite examples/scenario-service/experiments-suite.json -out results/
//
// Worker mode joins a hbpfleet coordinator instead of serving its own
// API: the daemon pulls leased assignments, executes them with the
// same deterministic executor, heartbeats while running, and reports
// outcomes; SIGINT/SIGTERM stops pulling and exits:
//
//	hbpsimd -worker -coordinator http://127.0.0.1:9090 -name w1 -workers 2
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/scenario"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (daemon mode)")
	journalPath := flag.String("journal", "", "append-only run journal; restart recovery marks interrupted runs")
	workers := flag.Int("workers", 2, "execution pool size")
	queueCap := flag.Int("queue-cap", 64, "submission queue capacity (full queue -> 503 + Retry-After)")
	wallDeadline := flag.Float64("wall-deadline", 120, "default per-attempt wall-clock deadline in seconds")
	maxEvents := flag.Uint64("max-events", 0, "default simulated-event deadline (0 = none)")
	maxAttempts := flag.Int("max-attempts", 3, "default attempt cap for retryable infrastructure faults")
	drainTimeout := flag.Float64("drain-timeout", 60, "seconds to let in-flight runs finish on shutdown before cancelling them")
	resubmit := flag.Bool("resubmit-interrupted", false, "re-queue runs the previous daemon died holding")
	suitePath := flag.String("suite", "", "batch mode: run this suite spec (JSON) to completion and exit")
	outDir := flag.String("out", "", "batch mode: write one JSON artifact per case into this directory")
	worker := flag.Bool("worker", false, "worker mode: pull leased runs from a hbpfleet coordinator instead of serving HTTP")
	coordinator := flag.String("coordinator", "", "worker mode: coordinator base URL, e.g. http://127.0.0.1:9090")
	name := flag.String("name", "", "worker mode: worker name (default the hostname)")
	flag.Parse()

	if *worker {
		os.Exit(workerMode(*coordinator, *name, *workers, *maxEvents))
	}

	var journal *scenario.Journal
	var recovered []scenario.Entry
	if *journalPath != "" {
		var err error
		journal, recovered, err = scenario.OpenJournal(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
	}

	runner := scenario.NewRunner(scenario.Config{
		Workers:      *workers,
		QueueCap:     *queueCap,
		WallDeadline: time.Duration(*wallDeadline * float64(time.Second)),
		MaxEvents:    *maxEvents,
		MaxAttempts:  *maxAttempts,
		Journal:      journal,
	}, recovered)
	runner.Start()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *suitePath != "" {
		os.Exit(batch(ctx, runner, *suitePath, *outDir, time.Duration(*drainTimeout*float64(time.Second))))
	}

	if n := resubmitInterrupted(runner, recovered, *resubmit); n > 0 {
		log.Printf("resubmitted %d interrupted runs from the journal", n)
	}

	srv := &http.Server{Addr: *addr, Handler: scenario.NewServer(runner)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("hbpsimd listening on %s (%d workers, queue %d)", *addr, *workers, *queueCap)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("signal received; draining (up to %.0fs)", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainTimeout*float64(time.Second)))
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := runner.Drain(shutCtx); err != nil {
		log.Printf("drain expired; live runs were cancelled: %v", err)
		os.Exit(1)
	}
	log.Print("drained cleanly")
}

// workerMode registers with a hbpfleet coordinator and executes
// leased assignments until interrupted. The fleet layer owns all
// failure handling — a worker that dies mid-run simply stops
// heartbeating and the coordinator re-dispatches.
func workerMode(coordinator, name string, capacity int, maxEvents uint64) int {
	if coordinator == "" {
		log.Print("worker mode needs -coordinator")
		return 2
	}
	if name == "" {
		name, _ = os.Hostname()
		if name == "" {
			name = "hbpsimd-worker"
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := fleet.NewWorker(fleet.WorkerConfig{
		Name:      name,
		Capacity:  capacity,
		MaxEvents: maxEvents,
	}, fleet.NewRemoteCoord(coordinator))
	log.Printf("worker %q joining fleet at %s (%d slots)", name, coordinator, capacity)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Print(err)
		return 1
	}
	log.Print("worker stopped")
	return 0
}

// resubmitInterrupted re-queues journal-recovered interrupted runs.
func resubmitInterrupted(r *scenario.Runner, recovered []scenario.Entry, enabled bool) int {
	if !enabled {
		return 0
	}
	_, runs := scenario.Recover(recovered)
	n := 0
	for _, run := range runs {
		if run.State == scenario.StateInterrupted {
			if _, err := r.Resubmit(run.ID); err != nil {
				log.Printf("resubmit %s: %v", run.ID, err)
				continue
			}
			n++
		}
	}
	return n
}

// batch runs one suite spec to completion: submit every case, drain,
// print a summary table, write per-case artifacts, and exit non-zero
// if anything failed. An interrupt cancels live runs and reports the
// partial results.
func batch(ctx context.Context, runner *scenario.Runner, path, outDir string, drainTimeout time.Duration) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Print(err)
		return 1
	}
	var spec scenario.SuiteSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		log.Printf("parse %s: %v", path, err)
		return 1
	}
	if err := spec.Validate(); err != nil {
		log.Print(err)
		return 1
	}
	suite, err := runner.CreateSuite(spec.Name)
	if err != nil {
		log.Print(err)
		return 1
	}
	ids := make([]string, 0, len(spec.Cases))
	for i := range spec.Cases {
		// The queue is sized for interactive backpressure; batch mode
		// just waits for a slot instead of bouncing.
		for {
			run, err := runner.Submit(suite.ID, spec.Cases[i])
			if err == nil {
				ids = append(ids, run.ID)
				break
			}
			if !errors.Is(err, scenario.ErrQueueFull) {
				log.Printf("submit %s: %v", spec.Cases[i].Name, err)
				return 1
			}
			select {
			case <-time.After(100 * time.Millisecond):
			case <-ctx.Done():
				log.Print("interrupted before full submission; cancelling admitted runs — results are partial")
				forceCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
				runner.Drain(forceCtx) //nolint:errcheck // exiting on the interrupt path regardless
				cancel()
				return 130
			}
		}
	}

	drained := make(chan error, 1)
	go func() { drained <- runner.Drain(context.Background()) }()
	interrupted := false
	select {
	case err := <-drained:
		if err != nil {
			log.Printf("drain: %v", err)
			return 1
		}
	case <-ctx.Done():
		interrupted = true
		log.Print("interrupt received; cancelling live runs — results below are partial")
		forceCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		runner.Drain(forceCtx) //nolint:errcheck // first Drain call owns the error
		cancel()
		<-drained
	}

	failed := 0
	fmt.Printf("suite %s (%s): %d cases\n", spec.Name, suite.ID, len(ids))
	for _, id := range ids {
		run, ok := runner.GetRun(id)
		if !ok {
			continue
		}
		line := fmt.Sprintf("  %-24s %-10s attempts=%d", run.Spec.Name, run.State, run.Attempts)
		switch {
		case run.State == scenario.StatePassed:
			line += "  fingerprint=" + run.Result.Fingerprint[:12]
			if run.Result.Tree != nil {
				line += fmt.Sprintf("  during-attack=%.1f%%", 100*run.Result.Tree.MeanDuringAttack)
			}
		case run.Error != nil:
			line += fmt.Sprintf("  %s: %s", run.Error.Kind, run.Error.Message)
			failed++
		default:
			failed++
		}
		fmt.Println(line)
		if outDir != "" {
			if err := writeArtifact(outDir, run); err != nil {
				log.Print(err)
				return 1
			}
		}
	}
	if interrupted {
		return 130
	}
	if failed > 0 {
		log.Printf("%d of %d cases did not pass", failed, len(ids))
		return 1
	}
	return 0
}

// writeArtifact persists one run as <out>/<case>.json, plus the
// rendered table alongside it for figure cases.
func writeArtifact(dir string, run scenario.Run) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		return err
	}
	name := filepath.Join(dir, run.Spec.Name+".json")
	if err := os.WriteFile(name, append(b, '\n'), 0o644); err != nil {
		return err
	}
	if run.Result != nil && run.Result.Figure != nil {
		txt := filepath.Join(dir, run.Spec.Name+".txt")
		if err := os.WriteFile(txt, []byte(run.Result.Figure.Rendered), 0o644); err != nil {
			return err
		}
	}
	return nil
}
