// Command figures regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each figure is
// printed as an aligned text table; -csv switches to CSV output.
//
// Usage:
//
//	figures -fig all            # everything at default scale
//	figures -fig 8 -scale full  # one figure at paper scale
//	figures -fig 5 -csv         # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure: 5..12, levelk, follower, overhead, all (paper figures), ext, everything")
	scaleName := flag.String("scale", "default", "scenario scale: quick, default, full")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	outDir := flag.String("out", "", "also write each figure to <dir>/fig_<id>.txt (or .csv)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "default":
		scale = experiments.DefaultScale()
	case "full":
		scale = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	type gen func() (*experiments.Table, error)
	generators := map[string]gen{
		"5":  func() (*experiments.Table, error) { return experiments.Fig5(), nil },
		"6":  func() (*experiments.Table, error) { return experiments.Fig6(scale) },
		"7":  func() (*experiments.Table, error) { return experiments.Fig7(scale), nil },
		"8":  func() (*experiments.Table, error) { return experiments.Fig8(scale) },
		"9":  func() (*experiments.Table, error) { return experiments.Fig9(scale), nil },
		"10": func() (*experiments.Table, error) { return experiments.Fig10(scale) },
		"11": func() (*experiments.Table, error) { return experiments.Fig11(scale) },
		"12": func() (*experiments.Table, error) { return experiments.Fig12(scale) },
		// Extensions beyond the paper's figures (see EXPERIMENTS.md).
		"levelk":       func() (*experiments.Table, error) { return experiments.ExtLevelK(scale) },
		"follower":     func() (*experiments.Table, error) { return experiments.ExtFollower(scale) },
		"overhead":     func() (*experiments.Table, error) { return experiments.ExtRoamingOverhead(scale) },
		"load":         func() (*experiments.Table, error) { return experiments.ExtLoad(scale) },
		"interas":      func() (*experiments.Table, error) { return experiments.ExtInterAS(scale) },
		"stackpi":      func() (*experiments.Table, error) { return experiments.ExtStackPi(scale) },
		"spie":         func() (*experiments.Table, error) { return experiments.ExtSPIE(scale) },
		"defenses":     func() (*experiments.Table, error) { return experiments.ExtAllDefenses(scale) },
		"threshold":    func() (*experiments.Table, error) { return experiments.ExtThreshold(scale) },
		"eq4":          func() (*experiments.Table, error) { return experiments.ExtEq4(scale) },
		"deployment":   func() (*experiments.Table, error) { return experiments.ExtDeployment(scale) },
		"onoff":        func() (*experiments.Table, error) { return experiments.ExtOnOffValidation(scale) },
		"faults":       func() (*experiments.Table, error) { return experiments.ExtFaults(scale) },
		"byzantine":    func() (*experiments.Table, error) { return experiments.ExtByzantine(scale) },
		"hierarchical": func() (*experiments.Table, error) { return experiments.ExtHierarchical(scale) },
	}
	order := []string{"5", "6", "7", "8", "9", "10", "11", "12"}
	extOrder := []string{"levelk", "follower", "overhead", "load", "interas", "stackpi", "spie", "defenses", "threshold", "eq4", "deployment", "onoff", "faults", "byzantine", "hierarchical"}

	var selected []string
	switch *fig {
	case "all":
		selected = order
	case "ext":
		selected = extOrder
	case "everything":
		selected = append(append([]string{}, order...), extOrder...)
	default:
		for _, f := range strings.Split(*fig, ",") {
			f = strings.TrimSpace(f)
			if _, ok := generators[f]; !ok {
				fmt.Fprintf(os.Stderr, "unknown figure %q (have %v)\n", f, order)
				os.Exit(2)
			}
			selected = append(selected, f)
		}
	}

	for _, f := range selected {
		start := time.Now()
		tab, err := generators[f]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f, err)
			os.Exit(1)
		}
		var rendered string
		ext := "txt"
		if *csv {
			rendered = fmt.Sprintf("# %s\n%s", tab.Title, tab.CSV())
			ext = "csv"
		} else {
			rendered = tab.Render()
		}
		fmt.Println(rendered)
		if *outDir != "" {
			path := filepath.Join(*outDir, fmt.Sprintf("fig_%s.%s", f, ext))
			if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "[fig %s done in %v]\n", f, time.Since(start).Round(time.Millisecond))
	}
}
