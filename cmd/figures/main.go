// Command figures regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each figure is
// printed as an aligned text table; -csv switches to CSV output.
// SIGINT cancels the in-flight run at its next event-batch checkpoint
// and the process exits non-zero after noting which figures are
// missing.
//
// Usage:
//
//	figures -fig all            # everything at default scale
//	figures -fig 8 -scale full  # one figure at paper scale
//	figures -fig 5 -csv         # machine-readable output
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure: 5..12, levelk, follower, overhead, all (paper figures), ext, everything")
	scaleName := flag.String("scale", "default", "scenario scale: quick, default, full")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	outDir := flag.String("out", "", "also write each figure to <dir>/fig_<id>.txt (or .csv)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "default":
		scale = experiments.DefaultScale()
	case "full":
		scale = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the current figure's runs at their next
	// event-batch checkpoint via Scale.Ctx.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	scale.Ctx = ctx

	generators := experiments.Figures()
	order := experiments.PaperFigureOrder()
	extOrder := experiments.ExtFigureOrder()

	var selected []string
	switch *fig {
	case "all":
		selected = order
	case "ext":
		selected = extOrder
	case "everything":
		selected = append(append([]string{}, order...), extOrder...)
	default:
		for _, f := range strings.Split(*fig, ",") {
			f = strings.TrimSpace(f)
			if _, ok := generators[f]; !ok {
				fmt.Fprintf(os.Stderr, "unknown figure %q (have %v)\n", f, order)
				os.Exit(2)
			}
			selected = append(selected, f)
		}
	}

	for fi, f := range selected {
		start := time.Now()
		tab, err := generators[f](scale)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "interrupted during figure %s — figures %v were not generated (results are partial)\n",
					f, selected[fi:])
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f, err)
			os.Exit(1)
		}
		var rendered string
		ext := "txt"
		if *csv {
			rendered = fmt.Sprintf("# %s\n%s", tab.Title, tab.CSV())
			ext = "csv"
		} else {
			rendered = tab.Render()
		}
		fmt.Println(rendered)
		if *outDir != "" {
			path := filepath.Join(*outDir, fmt.Sprintf("fig_%s.%s", f, ext))
			if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "[fig %s done in %v]\n", f, time.Since(start).Round(time.Millisecond))
	}
}
