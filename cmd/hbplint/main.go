// Command hbplint runs the project's invariant analyzers (see
// internal/lint) over Go packages.
//
// It speaks the go vet -vettool protocol, so the two ways to run it
// are equivalent:
//
//	go run ./cmd/hbplint ./...
//	go build -o hbplint ./cmd/hbplint && go vet -vettool=$PWD/hbplint ./...
//
// In the first form hbplint re-executes itself through `go vet`,
// which handles package loading, build caching and diagnostic
// formatting; hbplint itself only analyzes one compilation unit at a
// time, exactly like the vet tool.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	if isUnitcheckerInvocation(args) {
		unitchecker.Main(lint.Analyzers()...)
		return // unreachable; Main exits
	}

	// Standalone mode: let `go vet` drive this same binary over the
	// requested package patterns.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbplint:", err)
		os.Exit(1)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "hbplint:", err)
		os.Exit(1)
	}
}

// isUnitcheckerInvocation reports whether go vet is calling us with
// the unitchecker protocol: a JSON *.cfg unit to analyze, or the
// -flags / -V=full capability queries, or an explicit help request.
func isUnitcheckerInvocation(args []string) bool {
	for _, a := range args {
		switch {
		case a == "help" || strings.HasPrefix(a, "-flags") || strings.HasPrefix(a, "-V="):
			return true
		case strings.HasSuffix(a, ".cfg"):
			return true
		}
	}
	return false
}
