// Command hbplint runs the project's invariant analyzers (see
// internal/lint) over Go packages.
//
// It speaks the go vet -vettool protocol, so the two ways to run it
// are equivalent:
//
//	go run ./cmd/hbplint ./...
//	go build -o hbplint ./cmd/hbplint && go vet -vettool=$PWD/hbplint ./...
//
// In the first form hbplint re-executes itself through `go vet`,
// which handles package loading, build caching and diagnostic
// formatting; hbplint itself only analyzes one compilation unit at a
// time, exactly like the vet tool.
//
// Extra modes:
//
//	go run ./cmd/hbplint -ignores ./...
//	    audit mode: list every //hbplint:ignore suppression with
//	    file:line, analyzer and reason — the suppression debt at a
//	    glance. Exits 1 if any directive is missing its reason.
//
//	go run ./cmd/hbplint -json ./...
//	    emit diagnostics as JSON (the analysisflags format go vet
//	    uses), for CI annotation tooling.
//
//	HBPLINT_STALE_IGNORES=1 go run ./cmd/hbplint ./...
//	    additionally flag stale suppressions: directives whose line no
//	    longer triggers the named analyzer.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	if isUnitcheckerInvocation(args) {
		unitchecker.Main(lint.Analyzers()...)
		return // unreachable; Main exits
	}

	if len(args) > 0 && args[0] == "-ignores" {
		if err := listIgnores(args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "hbplint:", err)
			os.Exit(1)
		}
		return
	}

	// Standalone mode: let `go vet` drive this same binary over the
	// requested package patterns. Flags (e.g. -json) pass through to
	// the vet driver, which forwards them to our unitchecker half.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbplint:", err)
		os.Exit(1)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "hbplint:", err)
		os.Exit(1)
	}
}

// isUnitcheckerInvocation reports whether go vet is calling us with
// the unitchecker protocol: a JSON *.cfg unit to analyze, or the
// -flags / -V=full capability queries, or an explicit help request.
func isUnitcheckerInvocation(args []string) bool {
	for _, a := range args {
		switch {
		case a == "help" || strings.HasPrefix(a, "-flags") || strings.HasPrefix(a, "-V="):
			return true
		case strings.HasSuffix(a, ".cfg"):
			return true
		}
	}
	return false
}

// listIgnores walks the given directories (package patterns like
// ./... are accepted; the /... suffix is dropped) and prints every
// //hbplint:ignore directive, sorted by position. Analyzer corpora
// under testdata and vendored code are skipped — their directives are
// fixtures, not suppression debt. Returns an error (exit 1) when a
// directive is missing its written reason.
func listIgnores(dirs []string) error {
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	type entry struct {
		pos      token.Position
		analyzer string
		reason   string
	}
	fset := token.NewFileSet()
	var out []entry
	seen := map[string]bool{}
	for _, dir := range dirs {
		dir = strings.TrimSuffix(strings.TrimSuffix(dir, "/..."), "...")
		if dir == "" {
			dir = "."
		}
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				switch d.Name() {
				case "testdata", "vendor", ".git":
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || seen[path] {
				return nil
			}
			seen[path] = true
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "hbplint:ignore")
					if !ok {
						continue
					}
					e := entry{pos: fset.Position(c.Pos())}
					if fields := strings.Fields(rest); len(fields) > 0 {
						e.analyzer = fields[0]
						e.reason = strings.Join(fields[1:], " ")
					}
					out = append(out, e)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos.Filename != out[j].pos.Filename {
			return out[i].pos.Filename < out[j].pos.Filename
		}
		return out[i].pos.Line < out[j].pos.Line
	})
	missing := 0
	for _, e := range out {
		reason := e.reason
		if reason == "" {
			reason = "MISSING REASON"
			missing++
		}
		fmt.Printf("%s:%d: [%s] %s\n", e.pos.Filename, e.pos.Line, e.analyzer, reason)
	}
	fmt.Printf("%d active suppressions\n", len(out))
	if missing > 0 {
		return fmt.Errorf("%d suppression(s) missing a reason", missing)
	}
	return nil
}
