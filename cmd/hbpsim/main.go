// Command hbpsim runs a single DDoS-defense simulation scenario and
// prints the legitimate-throughput time series plus a run summary. It
// is a thin client of the scenario service: the flags build a
// scenario.TreeSpec (the same document the hbpsimd API accepts), and
// -server submits it to a running daemon instead of executing locally.
//
// Usage:
//
//	hbpsim -defense hbp -leaves 200 -attackers 25 -rate 0.1 -placement even
//	hbpsim -defense pushback -placement close
//	hbpsim -defense none
//	hbpsim -defense hbp -onoff 0.5,6.5 -progressive
//	hbpsim -server http://127.0.0.1:8080   # run on a hbpsimd daemon
//	hbpsim -scale internet -zombies 100000 # power-law AS sweep, 10^3..10^5 zombies
//
// SIGINT cancels the run at the next event-batch checkpoint; the
// process exits non-zero after noting the partial results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	defense := flag.String("defense", "hbp", "defense scheme: hbp, pushback, pushback-levelk, stackpi, none")
	leaves := flag.Int("leaves", 200, "number of end hosts in the tree")
	attackers := flag.Int("attackers", 25, "number of attack hosts")
	rate := flag.Float64("rate", 0.1, "per-attacker rate in Mb/s")
	placement := flag.String("placement", "even", "attacker placement: even, close, far")
	progressive := flag.Bool("progressive", false, "enable progressive back-propagation")
	onoff := flag.String("onoff", "", "on-off attack 'ton,toff' in seconds (empty = continuous)")
	red := flag.Bool("red", false, "use RED gateways instead of drop-tail")
	showTrace := flag.Bool("trace", false, "print the defense's structured event log (hbp only)")
	deployFrac := flag.Float64("deploy", 1.0, "fraction of ISPs deploying HBP (1 = everywhere)")
	duration := flag.Float64("duration", 100, "run length in seconds")
	epoch := flag.Float64("epoch", 10, "roaming epoch length m in seconds")
	seed := flag.Int64("seed", 1, "scenario seed")
	reliable := flag.Bool("reliable", false, "use the ack+lease control plane (hbp only)")
	loss := flag.Float64("loss", 0, "control-packet loss probability on every link [0,1)")
	crashRate := flag.Float64("crash-rate", 0, "router crash/restart cycles per 100 s of run")
	auth := flag.Bool("auth", false, "authenticate the control plane with per-epoch MACs + anti-replay (hbp only)")
	watchdog := flag.Bool("watchdog", false, "enable the stall watchdog that re-seeds evicted session trees (hbp only)")
	byzantine := flag.Int("byzantine", 0, "number of subverted routers forging/replaying/amplifying control frames (hbp only)")
	byzRate := flag.Float64("byz-rate", 2, "hostile frames per second per subverted router")
	shards := flag.Int("shards", 0, "event-engine shards (0 or 1 sequential; N>1 hosts the run on a sharded engine, bit-identical results)")
	server := flag.String("server", "", "submit to a running hbpsimd at this base URL instead of executing locally")
	fleetURL := flag.String("fleet", "", "submit to a hbpfleet coordinator at this base URL (same API as -server; the fleet picks a worker)")
	scale := flag.String("scale", "", "run a scale sweep instead of one scenario: 'internet' sweeps the zombie population 10^3..10^6 over power-law AS topologies")
	zombies := flag.Int("zombies", 1000000, "with -scale internet: largest zombie population to sweep to")
	flag.Parse()

	if *scale != "" {
		os.Exit(runScale(*scale, *zombies))
	}

	spec := scenario.TreeSpec{
		Defense:     *defense,
		Leaves:      *leaves,
		Attackers:   *attackers,
		RateMbps:    *rate,
		Placement:   *placement,
		Progressive: *progressive,
		OnOff:       *onoff,
		RED:         *red,
		DeployFrac:  *deployFrac,
		DurationSec: *duration,
		EpochSec:    *epoch,
		Seed:        *seed,
		Reliable:    *reliable,
		LossProb:    *loss,
		CrashRate:   *crashRate,
		Auth:        *auth,
		Watchdog:    *watchdog,
		Byzantine:   *byzantine,
		ByzRate:     *byzRate,
		Shards:      *shards,
	}
	cfg, err := spec.Config()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *fleetURL != "" && *server != "" {
		fmt.Fprintln(os.Stderr, "-server and -fleet are mutually exclusive")
		os.Exit(2)
	}
	if target := *server + *fleetURL; target != "" {
		os.Exit(remote(ctx, target, spec))
	}

	// The JSON spec reads 0 attackers as "default"; the flag means a
	// literal zero (an undefended-baseline sanity run). RunTree
	// revalidates.
	cfg.NumAttackers = *attackers
	cfg.TraceCap = 0
	if *showTrace {
		cfg.TraceCap = 2000
	}
	cfg.Context = ctx

	res, err := experiments.RunTree(cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted — no results (the run was cancelled before completing);", err)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("scenario: %v, %d clients, %d attackers (%s) at %.2f Mb/s each\n",
		cfg.Defense, cfg.Topology.Leaves-cfg.NumAttackers, cfg.NumAttackers,
		cfg.Placement, cfg.AttackRate/1e6)
	fmt.Printf("attack window: %.0f..%.0f s of %.0f s\n\n", cfg.AttackStart, cfg.AttackEnd, cfg.Duration)
	fmt.Println("time(s)  client throughput (% of bottleneck)")
	s := res.Throughput
	for i := range s.Times {
		bar := strings.Repeat("#", int(s.Values[i]*60))
		fmt.Printf("%6.0f  %5.1f  %s\n", s.Times[i], 100*s.Values[i], bar)
	}
	fmt.Printf("\nmean before attack: %.1f%%\n", 100*res.MeanBefore)
	fmt.Printf("mean during attack: %.1f%%\n", 100*res.MeanDuringAttack)
	fmt.Printf("captures: %d/%d attackers", res.AttackersCaptured, cfg.NumAttackers)
	if res.CollateralBlocks > 0 {
		fmt.Printf(", %d legitimate clients blocked", res.CollateralBlocks)
	}
	if len(res.CaptureTimes) > 0 {
		var max float64
		for _, ct := range res.CaptureTimes {
			if ct > max {
				max = ct
			}
		}
		fmt.Printf(" (last at +%.1f s after attack start)", max)
	}
	fmt.Printf("\ncontrol messages: %d, queue drops: %d\n", res.CtrlMessages, res.QueueDrops)
	if cfg.Defense == experiments.HBP {
		plane := "fire-and-forget"
		if *reliable {
			plane = "ack+lease"
		}
		fmt.Printf("control plane (%s): retrans %d, give-ups %d, acks rx %d, lease expiries %d, sessions lost to crash %d, open at end %d\n",
			plane, res.Ctrl.Retransmissions, res.Ctrl.GiveUps, res.Ctrl.AcksReceived,
			res.Ctrl.LeaseExpiries, res.Ctrl.SessionsLostToCrash, res.OpenSessionsAtEnd)
	}
	if cfg.Faults != nil || cfg.FaultCrashes > 0 {
		fmt.Printf("faults: %d packets lost to noise, %d to outages\n", res.FaultLossCount, res.FaultOutageCount)
	}
	if *auth || *watchdog || *byzantine > 0 {
		fmt.Printf("security: %d byzantine frames injected, %d auth rejects, %d replay rejects, %d admission rejects, %d evictions, %d mark-spoof rejects, %d watchdog reseeds\n",
			res.ByzantineInjected, res.Sec.AuthRejects, res.Sec.ReplayRejects,
			res.Sec.AdmissionRejects, res.Sec.SessionEvictions, res.Sec.MarkSpoofRejects, res.Sec.WatchdogReseeds)
		fmt.Printf("state: peak %d of budget %d\n", res.PeakState, res.StateBudget)
	}
	if *showTrace && res.Trace != nil {
		fmt.Printf("\ndefense event log (%d events, %d evicted):\n%s", res.Trace.Len(), res.Trace.Dropped(), res.Trace.String())
	}
}

// runScale executes a registry scale sweep locally and prints its
// table. SIGINT cancels between (and cooperatively within) sweep
// points.
func runScale(name string, maxZombies int) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	switch name {
	case "internet":
		t, err := experiments.InternetSweep(maxZombies, ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "interrupted — sweep abandoned;", err)
				return 130
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Print(t.Render())
		return 0
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q (want: internet)\n", name)
		return 2
	}
}

// remote submits the case to a hbpsimd daemon or hbpfleet coordinator
// (they serve the same API) and polls it to a terminal state, printing
// the remote result summary. Submission rides out 503 backpressure:
// the client honors the server's Retry-After under a capped jittered
// backoff instead of failing on a momentarily full queue.
func remote(ctx context.Context, base string, spec scenario.TreeSpec) int {
	client := scenario.NewClient(base)
	created, err := client.CreateSuite(ctx, scenario.SuiteSpec{
		Name:  "hbpsim",
		Cases: []scenario.CaseSpec{{Name: "cli", Tree: &spec}},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "submit failed: %v\n", err)
		return 1
	}
	if len(created.Runs) != 1 {
		fmt.Fprintf(os.Stderr, "submit failed: expected 1 run, got %d\n", len(created.Runs))
		return 1
	}
	id := created.Runs[0].ID
	run, err := client.WaitRun(ctx, id, 250*time.Millisecond)
	if err != nil {
		if ctx.Err() != nil {
			// Cancel with a fresh context: the signal context is done.
			cancelCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			client.CancelRun(cancelCtx, id) //nolint:errcheck // best-effort on the interrupt path
			cancel()
			fmt.Fprintln(os.Stderr, "interrupted — cancelled the remote run; partial results may be journaled on the daemon")
			return 130
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if run.State != scenario.StatePassed {
		fmt.Fprintf(os.Stderr, "run %s: %s (%+v)\n", run.ID, run.State, run.Error)
		return 1
	}
	t := run.Result.Tree
	fmt.Printf("run %s passed (attempt %d) on %s\n", run.ID, run.Attempts, base)
	fmt.Printf("mean before attack: %.1f%%\nmean during attack: %.1f%%\n",
		100*t.MeanBefore, 100*t.MeanDuringAttack)
	fmt.Printf("captures: %d attackers, %d collateral; control messages: %d; events: %d\n",
		t.AttackersCaptured, t.CollateralBlocks, t.CtrlMessages, t.EventsFired)
	fmt.Printf("fingerprint: %s\n", run.Result.Fingerprint)
	return 0
}
