// Command hbpsim runs a single DDoS-defense simulation scenario and
// prints the legitimate-throughput time series plus a run summary.
//
// Usage:
//
//	hbpsim -defense hbp -leaves 200 -attackers 25 -rate 0.1 -placement even
//	hbpsim -defense pushback -placement close
//	hbpsim -defense none
//	hbpsim -defense hbp -onoff 0.5,6.5 -progressive
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/topology"
)

func main() {
	defense := flag.String("defense", "hbp", "defense scheme: hbp, pushback, pushback-levelk, stackpi, none")
	leaves := flag.Int("leaves", 200, "number of end hosts in the tree")
	attackers := flag.Int("attackers", 25, "number of attack hosts")
	rate := flag.Float64("rate", 0.1, "per-attacker rate in Mb/s")
	placement := flag.String("placement", "even", "attacker placement: even, close, far")
	progressive := flag.Bool("progressive", false, "enable progressive back-propagation")
	onoff := flag.String("onoff", "", "on-off attack 'ton,toff' in seconds (empty = continuous)")
	red := flag.Bool("red", false, "use RED gateways instead of drop-tail")
	showTrace := flag.Bool("trace", false, "print the defense's structured event log (hbp only)")
	deployFrac := flag.Float64("deploy", 1.0, "fraction of ISPs deploying HBP (1 = everywhere)")
	duration := flag.Float64("duration", 100, "run length in seconds")
	epoch := flag.Float64("epoch", 10, "roaming epoch length m in seconds")
	seed := flag.Int64("seed", 1, "scenario seed")
	reliable := flag.Bool("reliable", false, "use the ack+lease control plane (hbp only)")
	loss := flag.Float64("loss", 0, "control-packet loss probability on every link [0,1)")
	crashRate := flag.Float64("crash-rate", 0, "router crash/restart cycles per 100 s of run")
	auth := flag.Bool("auth", false, "authenticate the control plane with per-epoch MACs + anti-replay (hbp only)")
	watchdog := flag.Bool("watchdog", false, "enable the stall watchdog that re-seeds evicted session trees (hbp only)")
	byzantine := flag.Int("byzantine", 0, "number of subverted routers forging/replaying/amplifying control frames (hbp only)")
	byzRate := flag.Float64("byz-rate", 2, "hostile frames per second per subverted router")
	flag.Parse()

	cfg := experiments.DefaultTreeConfig()
	cfg.Topology.Leaves = *leaves
	cfg.NumAttackers = *attackers
	cfg.AttackRate = *rate * 1e6
	cfg.Duration = *duration
	if *duration < cfg.AttackEnd {
		cfg.AttackEnd = *duration * 0.95
	}
	cfg.Pool.EpochLen = *epoch
	cfg.Progressive = *progressive
	cfg.REDQueues = *red
	cfg.DeployFraction = *deployFrac
	cfg.Seed = *seed
	cfg.Reliable = *reliable
	if *loss > 0 {
		cfg.Faults = experiments.ControlLossPlan(cfg.Seed, *loss)
	}
	if *crashRate > 0 {
		cfg.FaultCrashes = int(*crashRate * cfg.Duration / 100)
		if cfg.FaultCrashes == 0 {
			cfg.FaultCrashes = 1
		}
	}
	cfg.EpochAuth = *auth
	cfg.Watchdog = *watchdog
	cfg.ByzantineNodes = *byzantine
	cfg.ByzantineRate = *byzRate
	cfg.TraceCap = 0
	if *showTrace {
		cfg.TraceCap = 2000
	}

	switch *defense {
	case "hbp":
		cfg.Defense = experiments.HBP
	case "pushback":
		cfg.Defense = experiments.Pushback
	case "pushback-levelk":
		cfg.Defense = experiments.PushbackLevelK
	case "stackpi":
		cfg.Defense = experiments.StackPiFilter
	case "none":
		cfg.Defense = experiments.NoDefense
	default:
		fmt.Fprintf(os.Stderr, "unknown defense %q\n", *defense)
		os.Exit(2)
	}
	switch *placement {
	case "even":
		cfg.Placement = topology.Even
	case "close":
		cfg.Placement = topology.Close
	case "far":
		cfg.Placement = topology.Far
	default:
		fmt.Fprintf(os.Stderr, "unknown placement %q\n", *placement)
		os.Exit(2)
	}
	if *onoff != "" {
		var ton, toff float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(*onoff, ",", " "), "%f %f", &ton, &toff); err != nil {
			fmt.Fprintf(os.Stderr, "bad -onoff %q: %v\n", *onoff, err)
			os.Exit(2)
		}
		cfg.OnOff = &experiments.OnOffSpec{Ton: ton, Toff: toff}
	}

	res, err := experiments.RunTree(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("scenario: %v, %d clients, %d attackers (%s) at %.2f Mb/s each\n",
		cfg.Defense, cfg.Topology.Leaves-cfg.NumAttackers, cfg.NumAttackers,
		cfg.Placement, cfg.AttackRate/1e6)
	fmt.Printf("attack window: %.0f..%.0f s of %.0f s\n\n", cfg.AttackStart, cfg.AttackEnd, cfg.Duration)
	fmt.Println("time(s)  client throughput (% of bottleneck)")
	s := res.Throughput
	for i := range s.Times {
		bar := strings.Repeat("#", int(s.Values[i]*60))
		fmt.Printf("%6.0f  %5.1f  %s\n", s.Times[i], 100*s.Values[i], bar)
	}
	fmt.Printf("\nmean before attack: %.1f%%\n", 100*res.MeanBefore)
	fmt.Printf("mean during attack: %.1f%%\n", 100*res.MeanDuringAttack)
	fmt.Printf("captures: %d/%d attackers", res.AttackersCaptured, cfg.NumAttackers)
	if res.CollateralBlocks > 0 {
		fmt.Printf(", %d legitimate clients blocked", res.CollateralBlocks)
	}
	if len(res.CaptureTimes) > 0 {
		var max float64
		for _, ct := range res.CaptureTimes {
			if ct > max {
				max = ct
			}
		}
		fmt.Printf(" (last at +%.1f s after attack start)", max)
	}
	fmt.Printf("\ncontrol messages: %d, queue drops: %d\n", res.CtrlMessages, res.QueueDrops)
	if cfg.Defense == experiments.HBP {
		plane := "fire-and-forget"
		if *reliable {
			plane = "ack+lease"
		}
		fmt.Printf("control plane (%s): retrans %d, give-ups %d, acks rx %d, lease expiries %d, sessions lost to crash %d, open at end %d\n",
			plane, res.Ctrl.Retransmissions, res.Ctrl.GiveUps, res.Ctrl.AcksReceived,
			res.Ctrl.LeaseExpiries, res.Ctrl.SessionsLostToCrash, res.OpenSessionsAtEnd)
	}
	if cfg.Faults != nil || cfg.FaultCrashes > 0 {
		fmt.Printf("faults: %d packets lost to noise, %d to outages\n", res.FaultLossCount, res.FaultOutageCount)
	}
	if *auth || *watchdog || *byzantine > 0 {
		fmt.Printf("security: %d byzantine frames injected, %d auth rejects, %d replay rejects, %d admission rejects, %d evictions, %d mark-spoof rejects, %d watchdog reseeds\n",
			res.ByzantineInjected, res.Sec.AuthRejects, res.Sec.ReplayRejects,
			res.Sec.AdmissionRejects, res.Sec.SessionEvictions, res.Sec.MarkSpoofRejects, res.Sec.WatchdogReseeds)
		fmt.Printf("state: peak %d of budget %d\n", res.PeakState, res.StateBudget)
	}
	if *showTrace && res.Trace != nil {
		fmt.Printf("\ndefense event log (%d events, %d evicted):\n%s", res.Trace.Len(), res.Trace.Dropped(), res.Trace.String())
	}
}
