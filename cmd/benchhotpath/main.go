// Command benchhotpath measures the simulation hot path and writes
// BENCH_hotpath.json: ns/op, B/op, allocs/op (and events/sec for the
// Fig. 8 scenario) for each BenchmarkHotPath* body, next to the
// recorded pre-refactor baseline so the trajectory is visible in one
// file. CI runs it on every push and uploads the result.
//
// Usage: go run ./cmd/benchhotpath [-o BENCH_hotpath.json] [-benchtime 1s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchhot"
)

// Result is one benchmark measurement.
type Result struct {
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// RouteBPerNode and HopsPerOp are the InternetRoute gauges: the
	// compressed routing-state footprint and mean path length at
	// 10⁵-endpoint scale.
	RouteBPerNode float64 `json:"route_bytes_per_node,omitempty"`
	HopsPerOp     float64 `json:"hops_per_op,omitempty"`
	Iterations    int     `json:"iterations,omitempty"`
}

// baseline holds the numbers measured immediately before the
// zero-allocation refactor (container/heap events with per-event
// pointer allocations, per-hop closures, slice-shift queues, literal
// packets), on the same reduced-scale scenarios. They are fixed
// reference points, not remeasured.
var baseline = map[string]Result{
	"Fig8":       {NsPerOp: 732450818, BytesPerOp: 226626661, AllocsPerOp: 5388025},
	"Forwarding": {NsPerOp: 2916, BytesPerOp: 2504, AllocsPerOp: 63},
	"EventQueue": {NsPerOp: 61.28, BytesPerOp: 64, AllocsPerOp: 1},
}

type report struct {
	Note      string `json:"note"`
	Go        string `json:"go"`
	Generated string `json:"generated_by"`
	// GOMAXPROCS records the core budget the numbers were taken on:
	// the ForestShard1/ForestShard8 ratio is only a real speedup
	// measurement when it is > 1.
	GOMAXPROCS int               `json:"gomaxprocs"`
	Baseline   map[string]Result `json:"baseline"`
	Current    map[string]Result `json:"current"`
}

func measure(f func(*testing.B)) Result {
	r := testing.Benchmark(f)
	out := Result{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
	if ev, ok := r.Extra["events/sec"]; ok {
		out.EventsPerSec = ev
	}
	if bn, ok := r.Extra["route-B/node"]; ok {
		out.RouteBPerNode = bn
	}
	if h, ok := r.Extra["hops/op"]; ok {
		out.HopsPerOp = h
	}
	return out
}

func main() {
	testing.Init() // registers test.* flags so benchtime can be set
	outPath := flag.String("o", "BENCH_hotpath.json", "output file")
	benchtime := flag.Duration("benchtime", time.Second, "target time per benchmark")
	flag.Parse()
	// testing.Benchmark honours the package-level benchtime flag.
	if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fmt.Fprintln(os.Stderr, "benchhotpath:", err)
		os.Exit(1)
	}

	rep := report{
		Note: "simulation hot-path trajectory: baseline = pre-refactor " +
			"(pointer events, per-hop closures, literal packets); " +
			"current = event slab + typed link events + packet pool",
		Go:         runtime.Version(),
		Generated:  "go run ./cmd/benchhotpath",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Baseline:   baseline,
		Current: map[string]Result{
			"Fig8":          measure(benchhot.Fig8),
			"Forwarding":    measure(benchhot.Forwarding),
			"EventQueue":    measure(benchhot.EventQueue),
			"TypedEvent":    measure(benchhot.TypedEvent),
			"Hierarchical":  measure(benchhot.Hierarchical),
			"ForestShard1":  measure(benchhot.Forest(1)),
			"ForestShard8":  measure(benchhot.Forest(8)),
			"Internet":      measure(benchhot.Internet),
			"InternetRoute": measure(benchhot.InternetRoute),
		},
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchhotpath:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchhotpath:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *outPath)
	fmt.Printf("GOMAXPROCS=%d (forest shard speedup needs >1 core)\n", runtime.GOMAXPROCS(0))
	for _, name := range []string{"Fig8", "Forwarding", "EventQueue", "TypedEvent", "Hierarchical", "ForestShard1", "ForestShard8", "Internet", "InternetRoute"} {
		cur := rep.Current[name]
		if base, ok := baseline[name]; ok {
			fmt.Printf("  %-11s %14.1f ns/op (was %14.1f)  %8d allocs/op (was %8d)\n",
				name, cur.NsPerOp, base.NsPerOp, cur.AllocsPerOp, base.AllocsPerOp)
		} else {
			fmt.Printf("  %-13s %14.1f ns/op                        %8d allocs/op\n",
				name, cur.NsPerOp, cur.AllocsPerOp)
		}
		if cur.RouteBPerNode > 0 {
			fmt.Printf("  %-13s %14.1f route bytes/node, %.1f hops/op\n", "", cur.RouteBPerNode, cur.HopsPerOp)
		}
	}
}
