// Command hbpfleet is the fleet coordinator: it accepts the same
// suite/case API as hbpsimd, but instead of executing runs itself it
// farms them out to registered hbpsimd workers under time-bounded
// leases. Workers that crash, hang or partition away lose their lease
// and the run is re-dispatched — with the base seed unchanged, so the
// failed-over result is bit-identical to a solo run. Every assignment
// and completion is journaled crash-safe; restarting the coordinator
// on the same journal requeues whatever was in flight.
//
//	hbpfleet -addr 127.0.0.1:9090 -journal fleet.jsonl
//	hbpsimd -worker -coordinator http://127.0.0.1:9090 -name w1
//	hbpsim -fleet http://127.0.0.1:9090 -defense hbp
//
// SIGINT/SIGTERM drains: admissions and leases stop, in-flight runs
// get their lease window to report, and unfinished runs stay in the
// journal to be requeued by the next coordinator generation.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address")
	journalPath := flag.String("journal", "", "append-only dispatch journal; restart recovery requeues in-flight runs")
	queueCap := flag.Int("queue-cap", 64, "admission queue capacity (full queue -> 503 + Retry-After)")
	lease := flag.Float64("lease", 15, "lease duration in seconds; a worker missing heartbeats this long forfeits its run")
	maxDispatches := flag.Int("max-dispatches", 5, "lease grants per run before it fails as worker-lost")
	maxAttempts := flag.Int("max-attempts", 3, "seed attempts for reported infrastructure faults")
	maxWorkers := flag.Int("max-workers", 64, "worker registry capacity")
	drainTimeout := flag.Float64("drain-timeout", 60, "seconds to let in-flight leases report on shutdown")
	flag.Parse()

	var journal *fleet.Journal
	var recovered []fleet.Entry
	if *journalPath != "" {
		var err error
		journal, recovered, err = fleet.OpenJournal(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
	}

	coord := fleet.NewCoordinator(fleet.Config{
		QueueCap:      *queueCap,
		LeaseDuration: time.Duration(*lease * float64(time.Second)),
		MaxDispatches: *maxDispatches,
		MaxAttempts:   *maxAttempts,
		MaxWorkers:    *maxWorkers,
		Journal:       journal,
	}, recovered)
	coord.Start()
	if n := len(recovered); n > 0 {
		h := coord.Health()
		log.Printf("recovered journal: %d entries, %d runs back in the queue", n, h.QueueDepth)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: *addr, Handler: fleet.NewServer(coord)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("hbpfleet listening on %s (queue %d, lease %.0fs, %d dispatches/run)",
		*addr, *queueCap, *lease, *maxDispatches)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("signal received; draining (up to %.0fs) — unfinished runs stay journaled for the next generation", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainTimeout*float64(time.Second)))
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := coord.Drain(shutCtx); err != nil {
		log.Printf("drain expired with leases still out: %v (their runs will be requeued from the journal)", err)
		os.Exit(1)
	}
	log.Print("drained cleanly")
}
