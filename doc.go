// Package repro is a Go reproduction of "Honeypot back-propagation
// for mitigating spoofing distributed Denial-of-Service attacks"
// (Khattab, Melhem, Mossé, Znati — J. Parallel Distrib. Comput. 66,
// 2006; preliminary version at SSN/IPDPS 2006).
//
// The library is organized as substrates under internal/ (see
// DESIGN.md for the full inventory):
//
//   - internal/des        — discrete-event simulation engine
//   - internal/netsim     — packet-level network simulator
//   - internal/topology   — string and Fig.7-matched tree topologies
//   - internal/traffic    — CBR / on-off / follower / client agents
//   - internal/hashchain  — backward one-way hash chain
//   - internal/roaming    — roaming-honeypots server pool (Sec. 4)
//   - internal/core       — honeypot back-propagation (Secs. 5–6)
//   - internal/asnet      — inter-AS scheme with HSMs (Sec. 5.1)
//   - internal/pushback   — ACC/Pushback baseline
//   - internal/analysis   — capture-time model (Sec. 7, Eqs. 1–12)
//   - internal/metrics    — throughput and capture-time measurement
//   - internal/experiments— per-figure scenario runners (Sec. 8)
//
// Entry points: cmd/hbpsim runs one scenario, cmd/figures regenerates
// every evaluated table/figure, examples/ contains runnable
// walk-throughs, and bench_test.go (this package) holds one benchmark
// per reproduced figure plus substrate micro-benchmarks.
package repro
